"""Tests for the pluggable pricing-mechanism layer.

The load-bearing guarantees:

* **Byte-identity** — the default posted-tiers mechanism reproduces the
  legacy bundling path exactly: same designs, captures, snapshot
  digests, and spec cache keys, for all six paper strategies.
* **Auction invariants** — the spot clearing price is strictly
  decreasing in supply, inverts exactly, and by Jensen's inequality spot
  revenue never exceeds the per-flow posted optimum.
* **Hybrid semantics** — posted book + spot lots partition the flows;
  the repricer's drift gate governs only the posted component while the
  spot side re-clears (and republishes) every priced window.
"""

import numpy as np
import pytest

from repro.config import MECHANISMS, MechanismConfig
from repro.core.bundling import paper_strategies
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.errors import ConfigurationError, MechanismError
from repro.mechanisms import (
    ASSIGN_PEERED,
    ASSIGN_POSTED,
    ASSIGN_SPOT,
    DEFAULT_MECHANISM,
    MECHANISM_NAMES,
    Hybrid,
    PaidPeering,
    PostedTiers,
    SpotAuction,
    cleared_supply,
    clearing_price,
    mechanism_by_name,
    tag_config_digest,
)
from repro.runtime.spec import ExperimentSpec
from repro.stream import (
    STATUS_PRICED,
    StreamConfig,
    StreamingPipeline,
    TraceReplaySource,
)
from repro.synth.datasets import load_dataset
from repro.synth.trace import generate_network_trace

P0 = 20.0


@pytest.fixture(scope="module")
def flows():
    return load_dataset("eu_isp", n_flows=120, seed=7)


@pytest.fixture(scope="module")
def market(flows):
    return Market(flows, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), P0)


@pytest.fixture(scope="module")
def elastic_market(flows):
    return Market(flows, CEDDemand(alpha=3.0), LinearDistanceCost(theta=0.2), P0)


class TestRegistry:
    def test_names_in_sync_with_config(self):
        # repro.config carries a literal copy (to avoid importing this
        # package from the config layer); they must never diverge.
        assert tuple(MECHANISMS) == tuple(MECHANISM_NAMES)

    def test_by_name_builds_each(self):
        for name in MECHANISM_NAMES:
            assert mechanism_by_name(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(MechanismError, match="unknown mechanism"):
            mechanism_by_name("dutch-auction")

    def test_digest_tagging(self):
        assert tag_config_digest("abc123", DEFAULT_MECHANISM) == "abc123"
        assert (
            tag_config_digest("abc123", "spot-auction")
            == "abc123|mechanism=spot-auction"
        )


class TestPostedTiersByteIdentity:
    @pytest.mark.parametrize(
        "strategy", paper_strategies(), ids=lambda s: s.name
    )
    def test_matches_legacy_path_exactly(self, market, strategy):
        outcome = market.tiered_outcome(strategy, 3)
        design = PostedTiers(strategy=strategy, n_tiers=3).design_on(market)
        assert design.profit == outcome.profit
        assert design.profit_capture == outcome.profit_capture
        assert design.consumer_surplus == outcome.consumer_surplus
        assert [t.price for t in design.tiers] == [
            t.price for t in outcome.tiers
        ]
        assert [t.n_flows for t in design.tiers] == [
            t.n_flows for t in outcome.tiers
        ]
        assert [t.demand_mbps for t in design.tiers] == [
            t.demand_mbps for t in outcome.tiers
        ]

    def test_capture_protocol_entry_point(self, flows, market):
        capture = PostedTiers(n_tiers=3).capture(
            flows, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), P0
        )
        assert capture == market.tiered_outcome(
            PostedTiers().strategy, 3
        ).profit_capture

    def test_all_tiers_posted_none_spot(self, market):
        design = PostedTiers(n_tiers=3).design_on(market)
        assert design.posted_tiers == design.n_tiers
        assert design.spot_tiers == 0
        assert design.assignment is None

    def test_spec_cache_key_unchanged_for_default(self):
        spec = ExperimentSpec(dataset="eu_isp", n_flows=32, seed=1)
        assert spec.mechanism == DEFAULT_MECHANISM
        assert "mechanism" not in spec.key()
        tagged = ExperimentSpec(
            dataset="eu_isp", n_flows=32, seed=1, mechanism="spot-auction"
        )
        assert tagged.key()["mechanism"] == "spot-auction"
        assert tagged.digest() != spec.digest()

    def test_snapshot_digest_unchanged_for_default(self, flows):
        # Snapshots need destination addresses, which the synthetic
        # counterfactual datasets omit — rebuild the columns with them.
        from repro.core.flow import FlowTable

        addressed = FlowTable(
            flows.demands,
            flows.distances,
            dsts=[f"10.0.{i // 256}.{i % 256}" for i in range(len(flows))],
        )
        market = Market(
            addressed, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), P0
        )
        posted = PostedTiers(n_tiers=3).design_on(market)
        snapshot = PostedTiers().snapshot(
            posted, version=1, config_digest="deadbeef"
        )
        assert snapshot.config_digest == "deadbeef"
        spot_snapshot = SpotAuction(windows=4).snapshot(
            SpotAuction(windows=4).design_on(market),
            version=1,
            config_digest="deadbeef",
        )
        assert spot_snapshot.config_digest == "deadbeef|mechanism=spot-auction"


class TestSpotAuction:
    def test_clearing_price_monotone_in_supply(self, elastic_market):
        v = elastic_market.valuations
        supplies = np.linspace(10.0, 1000.0, 8)
        prices = [clearing_price(v, s, 3.0) for s in supplies]
        assert all(a > b for a, b in zip(prices, prices[1:]))

    def test_clearing_price_inverts_exactly(self, elastic_market):
        v = elastic_market.valuations
        for supply in (25.0, 400.0, 9000.0):
            p = clearing_price(v, supply, 2.0)
            assert cleared_supply(v, p, 2.0) == pytest.approx(
                supply, rel=1e-9
            )

    def test_clearing_price_validation(self):
        with pytest.raises(MechanismError):
            clearing_price([], 10.0, 2.0)
        with pytest.raises(MechanismError):
            clearing_price([1.0, -2.0], 10.0, 2.0)
        with pytest.raises(MechanismError):
            clearing_price([1.0], 0.0, 2.0)
        with pytest.raises(MechanismError):
            clearing_price([1.0], 10.0, 1.0)
        with pytest.raises(MechanismError):
            cleared_supply([1.0], 0.0, 2.0)

    def test_revenue_never_exceeds_per_flow_optimum(self, flows):
        # Jensen: p^(1-alpha) is convex for alpha > 1, so any uniform
        # price on a lot earns at most the sum of per-flow optima —
        # spot profit <= max_profit, under inelastic AND elastic demand.
        for alpha in (1.1, 3.0):
            m = Market(
                flows, CEDDemand(alpha=alpha), LinearDistanceCost(theta=0.2), P0
            )
            for windows in (1, 6, 24, 120):
                design = SpotAuction(windows=windows).design_on(m)
                assert design.profit <= m.max_profit() + 1e-9
                assert design.profit_capture <= 1.0 + 1e-12

    def test_more_windows_never_hurt(self, elastic_market):
        profits = [
            SpotAuction(windows=w).design_on(elastic_market).profit
            for w in (1, 3, 12, 60)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(profits, profits[1:]))

    def test_spot_beats_posted_on_elastic_family(self, elastic_market):
        spot = SpotAuction(windows=24).design_on(elastic_market)
        posted = PostedTiers(n_tiers=3).design_on(elastic_market)
        assert spot.profit_capture >= posted.profit_capture

    def test_every_flow_assigned_spot(self, market):
        design = SpotAuction(windows=8).design_on(market)
        assert design.posted_tiers == 0
        assert design.spot_tiers == design.n_tiers == 8
        assert np.all(design.assignment == ASSIGN_SPOT)

    def test_lots_partition_cost_ordered(self, market):
        lots = SpotAuction(windows=5).lots(market.costs)
        merged = np.concatenate(lots)
        assert sorted(merged.tolist()) == list(range(market.n_flows))
        boundaries = [market.costs[lot].max() for lot in lots[:-1]]
        nexts = [market.costs[lot].min() for lot in lots[1:]]
        assert all(b <= n + 1e-12 for b, n in zip(boundaries, nexts))


class TestPaidPeering:
    def test_two_posted_tiers(self, market):
        design = PaidPeering().design_on(market)
        assert design.n_tiers == 2
        assert design.posted_tiers == 2
        peered = design.assignment == ASSIGN_PEERED
        assert 0 < int(peered.sum()) < market.n_flows
        assert np.all(design.assignment[~peered] == ASSIGN_POSTED)

    def test_rate_between_floor_and_cap(self, market):
        terms = PaidPeering().negotiate(market)
        assert terms.n_peered + terms.n_transit == market.n_flows
        if terms.cap > terms.floor:
            assert terms.floor <= terms.rate <= terms.cap
        else:
            assert terms.rate == terms.floor

    def test_bargaining_weight_moves_rate(self, market):
        low = PaidPeering(bargaining=0.0).negotiate(market)
        high = PaidPeering(bargaining=1.0).negotiate(market)
        assert low.rate <= high.rate
        assert low.rate == low.floor
        if high.cap > high.floor:
            assert high.rate == pytest.approx(high.cap)

    def test_degenerate_split_raises(self, market):
        # A sub-mile exchange catchment leaves no eligible flows.
        with pytest.raises(MechanismError, match="degenerates"):
            PaidPeering(exchange_radius_miles=1e-6).negotiate(market)

    def test_validation(self):
        with pytest.raises(MechanismError):
            PaidPeering(exchange_radius_miles=-1.0)
        with pytest.raises(MechanismError):
            PaidPeering(bargaining=1.5)
        with pytest.raises(MechanismError):
            PaidPeering(direct_cost_factor=0.0)


class TestHybrid:
    def test_posted_and_spot_partition(self, market):
        design = Hybrid(n_tiers=3, spot_windows=6).design_on(market)
        assert design.posted_tiers == 3
        assert design.spot_tiers == 6
        n_spot = int(np.sum(design.assignment == ASSIGN_SPOT))
        assert n_spot == round(0.5 * market.n_flows)
        assert int(np.sum(design.assignment == ASSIGN_POSTED)) == (
            market.n_flows - n_spot
        )

    def test_split_extremes(self, market):
        pure_posted = Hybrid(elasticity_split=0.0, n_tiers=3).design_on(market)
        assert pure_posted.spot_tiers == 0
        assert np.all(pure_posted.assignment == ASSIGN_POSTED)
        pure_spot = Hybrid(elasticity_split=1.0, spot_windows=4).design_on(
            market
        )
        assert pure_spot.posted_tiers == 0
        assert np.all(pure_spot.assignment == ASSIGN_SPOT)

    def test_spot_side_takes_most_elastic_flows(self, market):
        hybrid = Hybrid(elasticity_split=0.25)
        spot_idx = hybrid.spot_flows(market)
        ratio = market.costs / market.valuations
        assert spot_idx.size == round(0.25 * market.n_flows)
        assert ratio[spot_idx].min() >= np.partition(
            ratio, market.n_flows - spot_idx.size - 1
        )[market.n_flows - spot_idx.size - 1] - 1e-12

    def test_validation(self):
        with pytest.raises(MechanismError):
            Hybrid(n_tiers=0)
        with pytest.raises(MechanismError):
            Hybrid(spot_windows=0)
        with pytest.raises(MechanismError):
            Hybrid(elasticity_split=-0.1)


class TestScoringAgainstWelfare:
    def test_design_scores_are_consistent(self, market):
        for name in MECHANISM_NAMES:
            design = mechanism_by_name(name, spot_windows=6).design_on(market)
            assert design.welfare == pytest.approx(
                design.profit + design.consumer_surplus
            )
            assert design.n_tiers == len(design.tier_prices)
            assert design.tier_prices == tuple(sorted(design.tier_prices))
            # Synthetic datasets carry no destination addresses, so the
            # design scores but cannot be published.
            assert design.tier_design is None
            with pytest.raises(MechanismError, match="destination"):
                mechanism_by_name(name).snapshot(
                    design, version=1, config_digest="d"
                )


class TestMechanismConfig:
    def test_defaults(self):
        cfg = MechanismConfig.resolve()
        assert cfg.mechanism == DEFAULT_MECHANISM
        assert cfg.is_default
        assert cfg.spot_windows == 24

    def test_env_and_explicit_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_MECHANISM", "spot-auction")
        monkeypatch.setenv("REPRO_MECHANISM_SPOT_WINDOWS", "12")
        cfg = MechanismConfig.resolve()
        assert cfg.mechanism == "spot-auction"
        assert cfg.spot_windows == 12
        assert not cfg.is_default
        explicit = MechanismConfig.resolve(mechanism="hybrid")
        assert explicit.mechanism == "hybrid"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MechanismConfig(mechanism="sealed-bid")
        with pytest.raises(ConfigurationError):
            MechanismConfig(spot_windows=0)
        with pytest.raises(ConfigurationError):
            MechanismConfig(elasticity_split=2.0)
        with pytest.raises(ConfigurationError):
            MechanismConfig(bargaining=-0.5)
        with pytest.raises(ConfigurationError):
            MechanismConfig(exchange_radius_miles=0.0)

    def test_build_constructs_selected_mechanism(self):
        cfg = MechanismConfig(
            mechanism="hybrid", spot_windows=6, elasticity_split=0.3
        )
        mech = cfg.build(n_tiers=4)
        assert isinstance(mech, Hybrid)
        assert mech.spot_windows == 6
        assert mech.elasticity_split == 0.3
        assert mech.n_tiers == 4


def make_pipeline(trace, mechanism=None, **overrides):
    defaults = dict(window_ms=600_000, drift_threshold=0.1)
    defaults.update(overrides)
    return StreamingPipeline(
        TraceReplaySource(trace, export_interval_ms=60_000),
        distance_fn=trace.distance_for,
        demand_model=CEDDemand(alpha=1.1),
        cost_model=LinearDistanceCost(theta=0.2),
        config=StreamConfig(**defaults),
        mechanism=mechanism,
    )


class TestStreamingMechanisms:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_network_trace(
            "eu_isp", n_flows=40, seed=11, duration_seconds=1800.0
        )

    def test_default_pipeline_digest_untagged(self, trace):
        legacy = make_pipeline(trace)
        spot = make_pipeline(trace, mechanism=SpotAuction(windows=4))
        assert "|mechanism=" not in legacy.config_digest
        assert spot.config_digest == (
            legacy.config_digest + "|mechanism=spot-auction"
        )

    def test_reclearing_mechanism_publishes_every_priced_window(self, trace):
        published = []
        pipeline = make_pipeline(trace, mechanism=Hybrid(spot_windows=4))
        pipeline.repricer.on_design_published = published.append
        report = pipeline.run()
        priced = [r for r in report.results if r.status == STATUS_PRICED]
        assert priced
        # Spot re-clears → a publication for every priced window, while
        # the drift gate re-tiered only a subset of them.
        assert len(published) == len(priced)
        assert sum(1 for r in priced if r.retier) < len(priced)
        sequences = [pub.sequence for pub in published]
        assert sequences == sorted(sequences)

    def test_posted_mechanism_publishes_only_on_retier(self, trace):
        published = []
        pipeline = make_pipeline(
            trace, mechanism=PostedTiers(n_tiers=3)
        )
        pipeline.repricer.on_design_published = published.append
        report = pipeline.run()
        assert len(published) == report.retier_events

    def test_mechanism_stream_matches_legacy_design(self, trace):
        legacy = make_pipeline(trace).run()
        posted = make_pipeline(trace, mechanism=PostedTiers(n_tiers=3)).run()
        assert posted.design is not None
        assert posted.design.rates == legacy.design.rates
        assert (
            posted.design.tier_of_destination
            == legacy.design.tier_of_destination
        )

    def test_hybrid_reclear_pins_posted_book(self, trace):
        pipeline = make_pipeline(trace, mechanism=Hybrid(spot_windows=4))
        report = pipeline.run()
        final = report.design
        assert final is not None
        posted = pipeline.repricer._posted_tiers
        assert posted and posted > 0
        # Final design still carries the posted book up front plus spot
        # lots behind it.
        assert len(final.rates) - 1 >= posted
