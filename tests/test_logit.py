"""Tests for logit demand (paper §3.2.2)."""

import numpy as np
import pytest

from repro.core.logit import LogitDemand
from repro.errors import CalibrationError, ModelParameterError


@pytest.fixture
def model():
    return LogitDemand(alpha=1.1, s0=0.2)


@pytest.fixture
def calibrated(model):
    q = np.array([10.0, 3.0, 100.0, 0.5])
    f = np.array([1.0, 5.0, 2.0, 11.0])
    p0 = 20.0
    v = model.fit_valuations(q, p0)
    gamma = model.fit_gamma(v, f, p0)
    return {"q": q, "f": f, "p0": p0, "v": v, "gamma": gamma, "c": gamma * f}


class TestConstruction:
    @pytest.mark.parametrize("alpha", [0.0, -1.0, float("nan")])
    def test_alpha_must_be_positive(self, alpha):
        with pytest.raises(ModelParameterError):
            LogitDemand(alpha=alpha)

    @pytest.mark.parametrize("s0", [0.0, 1.0, -0.2, 1.5])
    def test_s0_must_be_interior(self, s0):
        with pytest.raises(ModelParameterError, match="s0"):
            LogitDemand(alpha=1.0, s0=s0)

    def test_describe(self, model):
        text = model.describe()
        assert "1.1" in text and "0.2" in text


class TestShares:
    def test_shares_plus_outside_sum_to_one(self, model):
        v = np.array([2.0, 1.0, 0.5])
        p = np.array([1.0, 1.0, 1.0])
        shares = model.shares(v, p)
        total = shares.sum() + model.outside_share(v, p)
        assert total == pytest.approx(1.0)

    def test_eq6_two_flow_values(self):
        model = LogitDemand(alpha=1.0, s0=0.5)
        v = np.array([1.0, 2.0])
        p = np.array([1.0, 2.0])
        # both utilities zero -> e^0 = 1 each; denom = 1+1+1 = 3.
        shares = model.shares(v, p)
        assert shares == pytest.approx([1 / 3, 1 / 3])
        assert model.outside_share(v, p) == pytest.approx(1 / 3)

    def test_share_shifts_to_cheaper_flow(self, model):
        v = np.array([1.0, 1.0])
        before = model.shares(v, np.array([1.0, 1.0]))
        after = model.shares(v, np.array([1.0, 2.0]))
        assert after[0] > before[0]
        assert after[1] < before[1]

    def test_demand_not_separable(self, model):
        # Raising flow 2's price raises flow 1's demand - the substitution
        # the CED model cannot express.
        v = np.array([1.0, 1.0])
        q1_before = model.quantities(v, np.array([1.0, 1.0]))[0]
        q1_after = model.quantities(v, np.array([1.0, 3.0]))[0]
        assert q1_after > q1_before

    def test_numerical_stability_extreme_utilities(self):
        model = LogitDemand(alpha=10.0, s0=0.2)
        v = np.array([100.0, 0.0])
        p = np.array([1.0, 1.0])
        shares = model.shares(v, p)
        assert np.all(np.isfinite(shares))
        assert shares[0] == pytest.approx(1.0)
        assert model.outside_share(v, p) < 1e-200 or shares[1] >= 0.0


class TestCalibration:
    def test_fitted_shares_reproduce_observed_demand(self, model, calibrated):
        k = model.population(calibrated["q"])
        shares = model.shares(
            calibrated["v"], np.full(4, calibrated["p0"])
        )
        assert k * shares == pytest.approx(calibrated["q"])

    def test_outside_share_at_blended_rate_is_s0(self, model, calibrated):
        s0 = model.outside_share(calibrated["v"], np.full(4, calibrated["p0"]))
        assert s0 == pytest.approx(model.s0)

    def test_population_formula(self, model):
        q = np.array([8.0, 2.0])
        assert model.population(q) == pytest.approx(10.0 / 0.8)

    def test_gamma_makes_blended_rate_optimal(self, model, calibrated):
        # After calibration, no single uniform price beats P0.
        v, c, p0 = calibrated["v"], calibrated["c"], calibrated["p0"]
        assert model.uniform_price(v, c) == pytest.approx(p0)
        best = model.profit(v, c, np.full(4, p0))
        for p in np.linspace(5.0, 60.0, 150):
            assert model.profit(v, c, np.full(4, p)) <= best + 1e-12

    def test_gamma_requires_feasible_parameters(self):
        # alpha * P0 * s0 <= 1 has no positive gamma solution.
        model = LogitDemand(alpha=1.1, s0=0.02)
        q = np.array([5.0, 1.0])
        v = model.fit_valuations(q, 20.0)
        with pytest.raises(CalibrationError, match="alpha"):
            model.fit_gamma(v, np.array([1.0, 2.0]), 20.0)

    def test_fit_valuations_rejects_nonpositive_demand(self, model):
        with pytest.raises(CalibrationError):
            model.fit_valuations(np.array([1.0, 0.0]), 10.0)

    def test_gamma_rejects_nonpositive_relative_costs(self, model, calibrated):
        with pytest.raises(CalibrationError):
            model.fit_gamma(calibrated["v"], np.array([1.0, 1.0, 1.0, 0.0]), 20.0)


class TestPricing:
    def test_optimal_prices_have_equal_markup(self, model, calibrated):
        p = model.optimal_prices(calibrated["v"], calibrated["c"])
        markups = p - calibrated["c"]
        assert np.allclose(markups, markups[0])

    def test_markup_satisfies_eq9(self, model, calibrated):
        p = model.optimal_prices(calibrated["v"], calibrated["c"])
        s0 = model.outside_share(calibrated["v"], p)
        assert p - calibrated["c"] == pytest.approx(
            np.full(4, 1.0 / (model.alpha * s0))
        )

    def test_fixed_point_matches_closed_form(self, model, calibrated):
        closed = model.optimal_prices(calibrated["v"], calibrated["c"])
        iterated = model.optimize_prices_fixed_point(
            calibrated["v"], calibrated["c"]
        )
        assert iterated == pytest.approx(closed, rel=1e-6)

    def test_fixed_point_from_custom_start(self, model, calibrated):
        closed = model.optimal_prices(calibrated["v"], calibrated["c"])
        iterated = model.optimize_prices_fixed_point(
            calibrated["v"],
            calibrated["c"],
            initial_prices=calibrated["c"] + 100.0,
        )
        assert iterated == pytest.approx(closed, rel=1e-6)

    def test_optimal_beats_perturbed_prices(self, model, calibrated, rng):
        v, c = calibrated["v"], calibrated["c"]
        p_star = model.optimal_prices(v, c)
        best = model.profit(v, c, p_star)
        for _ in range(50):
            perturbed = p_star + rng.normal(0, 0.5, p_star.size)
            if np.any(perturbed <= 0):
                continue
            assert model.profit(v, c, perturbed) <= best + 1e-12

    def test_single_flow_monopoly_price(self):
        # One flow: profit s(p)(p-c) maximized; verify against a grid.
        model = LogitDemand(alpha=2.0, s0=0.2)
        v = np.array([3.0])
        c = np.array([1.0])
        p_star = model.optimal_prices(v, c)[0]
        best = model.profit(v, c, np.array([p_star]))
        grid = np.linspace(1.0, 6.0, 400)
        profits = [model.profit(v, c, np.array([p])) for p in grid]
        assert best >= max(profits) - 1e-10


class TestBundleComposition:
    def test_eq10_valuation(self, model):
        v = np.array([1.0, 2.0, 0.5])
        c = np.array([1.0, 1.0, 1.0])
        v_bundle, _ = model.compose_bundle(v, c)
        expected = np.log(np.sum(np.exp(model.alpha * v))) / model.alpha
        assert v_bundle == pytest.approx(expected)

    def test_eq11_cost_weighting(self, model):
        v = np.array([1.0, 2.0])
        c = np.array([4.0, 1.0])
        _, c_bundle = model.compose_bundle(v, c)
        w = np.exp(model.alpha * v)
        assert c_bundle == pytest.approx(float(np.sum(c * w) / np.sum(w)))

    def test_composition_is_exact_for_shares(self, model):
        # The composite flow at price P has exactly the summed share of the
        # members at price P.
        v = np.array([1.0, 1.7, 0.2])
        c = np.array([1.0, 2.0, 0.5])
        v_b, _ = model.compose_bundle(v, c)
        for price in (0.5, 1.0, 2.5):
            member_shares = model.shares(v, np.full(3, price)).sum()
            composite_share = model.shares(
                np.array([v_b]), np.array([price])
            )[0]
            assert composite_share == pytest.approx(member_shares)

    def test_composition_is_exact_for_profit(self, model):
        v = np.array([1.0, 1.7, 0.2])
        c = np.array([1.0, 2.0, 0.5])
        v_b, c_b = model.compose_bundle(v, c)
        for price in (1.0, 2.0, 3.0):
            direct = model.profit(v, c, np.full(3, price))
            composite = model.profit(
                np.array([v_b]), np.array([c_b]), np.array([price])
            )
            assert composite == pytest.approx(direct)

    def test_bundle_prices_recover_per_flow_optimum_for_singletons(
        self, model, calibrated
    ):
        bundles = [np.array([i]) for i in range(4)]
        prices = model.bundle_prices(calibrated["v"], calibrated["c"], bundles)
        assert prices == pytest.approx(
            model.optimal_prices(calibrated["v"], calibrated["c"])
        )

    def test_bundle_prices_equal_within_bundle(self, model, calibrated):
        bundles = [np.array([0, 2]), np.array([1, 3])]
        prices = model.bundle_prices(calibrated["v"], calibrated["c"], bundles)
        assert prices[0] == prices[2]
        assert prices[1] == prices[3]

    def test_bundle_prices_are_optimal_among_uniform_vectors(
        self, model, calibrated
    ):
        v, c = calibrated["v"], calibrated["c"]
        bundles = [np.array([0, 2]), np.array([1, 3])]
        prices = model.bundle_prices(v, c, bundles)
        best = model.profit(v, c, prices)
        for p_a in np.linspace(10.0, 40.0, 30):
            for p_b in np.linspace(10.0, 60.0, 30):
                candidate = np.array([p_a, p_b, p_a, p_b])
                assert model.profit(v, c, candidate) <= best + 1e-10


class TestSurplusAndPotentialProfit:
    def test_surplus_decreases_with_price(self, model):
        v = np.array([2.0, 1.0])
        low = model.consumer_surplus(v, np.array([1.0, 1.0]))
        high = model.consumer_surplus(v, np.array([2.0, 2.0]))
        assert high < low

    def test_surplus_nonnegative(self, model):
        # Relative to the outside option, surplus is at least zero.
        v = np.array([0.1])
        assert model.consumer_surplus(v, np.array([100.0])) >= 0.0

    def test_potential_profits_order_by_net_valuation(self, model):
        v = np.array([2.0, 2.0, 1.0])
        c = np.array([0.5, 1.5, 0.5])
        pi = model.potential_profits(v, c)
        assert pi[0] > pi[1]  # cheaper of two equal-v flows
        assert pi[0] > pi[2]  # higher-v of two equal-c flows

    def test_potential_profits_sum_to_total_optimal_profit(
        self, model, calibrated
    ):
        v, c = calibrated["v"], calibrated["c"]
        pi = model.potential_profits(v, c)
        total = model.profit(v, c, model.optimal_prices(v, c))
        assert pi.sum() == pytest.approx(total)


class TestBundleObjective:
    def test_slice_score_proportional_to_attractiveness(self, model):
        v = np.array([1.0, 1.5, 0.7])
        c = np.array([1.0, 2.0, 0.5])
        objective = model.bundle_objective(v, c)
        # Score of slice [i, j) must be proportional to
        # exp(alpha*(v_b - c_b)) with a global constant.
        def attractiveness(i, j):
            vb, cb = model.compose_bundle(v[i:j], c[i:j])
            return np.exp(model.alpha * (vb - cb))

        ratio = objective.slice_score(0, 1) / attractiveness(0, 1)
        for i, j in [(0, 2), (1, 3), (0, 3), (2, 3)]:
            assert objective.slice_score(i, j) / attractiveness(i, j) == (
                pytest.approx(ratio)
            )

    def test_total_profit_monotone_in_total_score(self, model, rng):
        # Partitions with a higher summed slice score earn more profit.
        v = rng.normal(20.0, 1.0, 6)
        c = rng.uniform(1.0, 6.0, 6)
        order = np.argsort(c)
        v, c = v[order], c[order]
        objective = model.bundle_objective(v, c)
        cuts_options = [[0, 3, 6], [0, 2, 6], [0, 1, 6], [0, 5, 6], [0, 4, 6]]
        scored = []
        for cuts in cuts_options:
            score = sum(
                objective.slice_score(a, b) for a, b in zip(cuts, cuts[1:])
            )
            bundles = [
                np.arange(a, b) for a, b in zip(cuts, cuts[1:])
            ]
            profit = model.profit(v, c, model.bundle_prices(v, c, bundles))
            scored.append((score, profit))
        scored.sort()
        profits = [profit for _, profit in scored]
        assert profits == sorted(profits)
