"""Tests pinning the public import surface.

Every package under :mod:`repro` must declare an explicit ``__all__``,
every listed name must actually import, and no private (underscored)
name may leak through.  This is the contract that lets the docs say
"import it from the package, not the module that happens to define it".
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = ["repro"] + [
    f"repro.{m.name}"
    for m in pkgutil.iter_modules(repro.__path__)
    if m.ispkg
]


@pytest.mark.parametrize("package", PACKAGES)
def test_declares_explicit_all(package):
    module = importlib.import_module(package)
    assert isinstance(getattr(module, "__all__", None), list), (
        f"{package} must declare an explicit __all__"
    )
    assert module.__all__, f"{package}.__all__ must not be empty"


@pytest.mark.parametrize("package", PACKAGES)
def test_every_name_in_all_imports(package):
    module = importlib.import_module(package)
    missing = [n for n in module.__all__ if not hasattr(module, n)]
    assert not missing, f"{package}.__all__ lists unimportable {missing}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_private_names_leak(package):
    module = importlib.import_module(package)
    leaked = [
        n for n in module.__all__
        if n.startswith("_") and n != "__version__"
    ]
    assert not leaked, f"{package}.__all__ leaks private names {leaked}"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicates_in_all(package):
    module = importlib.import_module(package)
    assert len(module.__all__) == len(set(module.__all__))


def test_star_import_matches_all():
    scope = {}
    exec("from repro import *", scope)
    exported = {n for n in scope if not n.startswith("__")} | {"__version__"}
    assert exported == set(repro.__all__) | {"__version__"}


def test_config_and_obs_types_reach_the_top_level():
    from repro import (
        ObsConfig,
        RuntimeConfig,
        ServeConfig,
        StreamConfig,
        TraceContext,
        Tracer,
    )
    from repro.config import RuntimeConfig as defined

    assert RuntimeConfig is defined
    del ObsConfig, ServeConfig, StreamConfig, TraceContext, Tracer


def test_every_error_class_is_public():
    import inspect

    from repro import errors

    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and issubclass(obj, errors.ReproError):
            assert hasattr(repro, name), f"repro.{name} missing"
            assert name in repro.__all__


def test_exit_codes_are_distinct_and_nonzero():
    from repro.errors import EXIT_CODES

    codes = list(EXIT_CODES.values())
    assert len(codes) == len(set(codes))
    assert all(code not in (0, 1, 2) for code in codes)
