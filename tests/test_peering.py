"""Tests for the peering economics (Figures 1 and 2)."""

import pytest

from repro.errors import ModelParameterError
from repro.peering.bypass import (
    BypassScenario,
    failure_window,
    sweep_direct_costs,
)
from repro.peering.worked_example import figure1_example


class TestFigure1Example:
    @pytest.fixture(scope="class")
    def example(self):
        return figure1_example()

    def test_blended_rate_is_1_20(self, example):
        assert example.blended.prices == pytest.approx((1.2, 1.2))

    def test_tiered_prices_are_2_and_1(self, example):
        assert example.tiered.prices == pytest.approx((2.0, 1.0))

    def test_paper_profit_numbers(self, example):
        assert example.blended.profit == pytest.approx(25.0 / 12.0)  # $2.08
        assert example.tiered.profit == pytest.approx(2.25)

    def test_paper_surplus_numbers(self, example):
        assert example.blended.consumer_surplus == pytest.approx(25.0 / 6.0)
        assert example.tiered.consumer_surplus == pytest.approx(4.5)

    def test_both_sides_gain(self, example):
        assert example.profit_gain > 0
        assert example.surplus_gain > 0
        assert example.welfare_gain == pytest.approx(
            example.profit_gain + example.surplus_gain
        )

    def test_figure1_quantities(self, example):
        # Blended: q = (v/1.2)^2 -> (0.694, 2.778); tiered: (0.25, 4).
        assert example.blended.quantities == pytest.approx((25 / 36, 25 / 9))
        assert example.tiered.quantities == pytest.approx((0.25, 4.0))

    def test_custom_parameters(self):
        example = figure1_example(alpha=3.0, valuations=(1.0, 1.0), costs=(1.0, 1.0))
        # Identical flows: tiering cannot help.
        assert example.profit_gain == pytest.approx(0.0, abs=1e-12)


class TestBypassScenario:
    def test_customer_stays_when_link_expensive(self):
        s = BypassScenario(
            blended_rate=10.0, isp_unit_cost=4.0, direct_unit_cost=12.0
        )
        assert not s.customer_bypasses
        assert s.outcome() == "stays"
        assert s.efficiency_loss_per_mbps == 0.0

    def test_efficient_bypass(self):
        s = BypassScenario(
            blended_rate=10.0, isp_unit_cost=4.0, direct_unit_cost=3.0
        )
        assert s.customer_bypasses and not s.is_market_failure
        assert s.outcome() == "efficient-bypass"

    def test_market_failure_window(self):
        # tiered price = 1.25 * 4 + 0.5 = 5.5; failure for c in (5.5, 10).
        s = BypassScenario(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_cost=7.0,
            margin=0.25,
            accounting_overhead=0.5,
        )
        assert s.tiered_price == pytest.approx(5.5)
        assert s.is_market_failure
        assert s.efficiency_loss_per_mbps == pytest.approx(1.5)

    def test_failure_condition_formula(self):
        # c_direct > (M+1)c_isp + A, per §2.2.2.
        s = BypassScenario(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_cost=5.5,
            margin=0.25,
            accounting_overhead=0.5,
        )
        assert not s.is_market_failure  # boundary is not a failure

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blended_rate": 0.0, "isp_unit_cost": 1.0, "direct_unit_cost": 1.0},
            {"blended_rate": 1.0, "isp_unit_cost": -1.0, "direct_unit_cost": 1.0},
            {"blended_rate": 1.0, "isp_unit_cost": 1.0, "direct_unit_cost": 0.0},
            {
                "blended_rate": 1.0,
                "isp_unit_cost": 1.0,
                "direct_unit_cost": 1.0,
                "margin": -0.5,
            },
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelParameterError):
            BypassScenario(**kwargs)


class TestSweep:
    def test_regimes_in_order(self):
        points = sweep_direct_costs(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_costs=[1.0, 6.0, 9.9, 10.1, 20.0],
            margin=0.25,
            accounting_overhead=0.0,
        )
        assert [p.outcome for p in points] == [
            "efficient-bypass",
            "market-failure",
            "market-failure",
            "stays",
            "stays",
        ]

    def test_loss_only_in_failure_regime(self):
        points = sweep_direct_costs(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_costs=[1.0, 7.0, 15.0],
        )
        assert points[0].efficiency_loss_per_mbps == 0.0
        assert points[1].efficiency_loss_per_mbps > 0.0
        assert points[2].efficiency_loss_per_mbps == 0.0

    def test_failure_window(self):
        lo, hi = failure_window(10.0, 4.0, margin=0.25, accounting_overhead=0.5)
        assert (lo, hi) == (pytest.approx(5.5), 10.0)

    def test_window_can_be_empty(self):
        # Blended rate already at cost: tiering cannot retain the traffic.
        lo, hi = failure_window(5.0, 4.0, margin=0.25)
        assert lo >= hi
