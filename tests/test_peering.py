"""Tests for the peering economics (Figures 1 and 2)."""

import numpy as np
import pytest

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.errors import ModelParameterError
from repro.peering.bypass import (
    OUTCOME_LABELS,
    BypassScenario,
    BypassTable,
    bypass_for_flows,
    failure_window,
    sweep_direct_costs,
)
from repro.peering.offerings import compare_offerings, offerings_for_flows
from repro.peering.worked_example import figure1_example
from repro.synth.datasets import load_dataset


class TestFigure1Example:
    @pytest.fixture(scope="class")
    def example(self):
        return figure1_example()

    def test_blended_rate_is_1_20(self, example):
        assert example.blended.prices == pytest.approx((1.2, 1.2))

    def test_tiered_prices_are_2_and_1(self, example):
        assert example.tiered.prices == pytest.approx((2.0, 1.0))

    def test_paper_profit_numbers(self, example):
        assert example.blended.profit == pytest.approx(25.0 / 12.0)  # $2.08
        assert example.tiered.profit == pytest.approx(2.25)

    def test_paper_surplus_numbers(self, example):
        assert example.blended.consumer_surplus == pytest.approx(25.0 / 6.0)
        assert example.tiered.consumer_surplus == pytest.approx(4.5)

    def test_both_sides_gain(self, example):
        assert example.profit_gain > 0
        assert example.surplus_gain > 0
        assert example.welfare_gain == pytest.approx(
            example.profit_gain + example.surplus_gain
        )

    def test_figure1_quantities(self, example):
        # Blended: q = (v/1.2)^2 -> (0.694, 2.778); tiered: (0.25, 4).
        assert example.blended.quantities == pytest.approx((25 / 36, 25 / 9))
        assert example.tiered.quantities == pytest.approx((0.25, 4.0))

    def test_custom_parameters(self):
        example = figure1_example(alpha=3.0, valuations=(1.0, 1.0), costs=(1.0, 1.0))
        # Identical flows: tiering cannot help.
        assert example.profit_gain == pytest.approx(0.0, abs=1e-12)


class TestBypassScenario:
    def test_customer_stays_when_link_expensive(self):
        s = BypassScenario(
            blended_rate=10.0, isp_unit_cost=4.0, direct_unit_cost=12.0
        )
        assert not s.customer_bypasses
        assert s.outcome() == "stays"
        assert s.efficiency_loss_per_mbps == 0.0

    def test_efficient_bypass(self):
        s = BypassScenario(
            blended_rate=10.0, isp_unit_cost=4.0, direct_unit_cost=3.0
        )
        assert s.customer_bypasses and not s.is_market_failure
        assert s.outcome() == "efficient-bypass"

    def test_market_failure_window(self):
        # tiered price = 1.25 * 4 + 0.5 = 5.5; failure for c in (5.5, 10).
        s = BypassScenario(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_cost=7.0,
            margin=0.25,
            accounting_overhead=0.5,
        )
        assert s.tiered_price == pytest.approx(5.5)
        assert s.is_market_failure
        assert s.efficiency_loss_per_mbps == pytest.approx(1.5)

    def test_failure_condition_formula(self):
        # c_direct > (M+1)c_isp + A, per §2.2.2.
        s = BypassScenario(
            blended_rate=10.0,
            isp_unit_cost=4.0,
            direct_unit_cost=5.5,
            margin=0.25,
            accounting_overhead=0.5,
        )
        assert not s.is_market_failure  # boundary is not a failure

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blended_rate": 0.0, "isp_unit_cost": 1.0, "direct_unit_cost": 1.0},
            {"blended_rate": 1.0, "isp_unit_cost": -1.0, "direct_unit_cost": 1.0},
            {"blended_rate": 1.0, "isp_unit_cost": 1.0, "direct_unit_cost": 0.0},
            {
                "blended_rate": 1.0,
                "isp_unit_cost": 1.0,
                "direct_unit_cost": 1.0,
                "margin": -0.5,
            },
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelParameterError):
            BypassScenario(**kwargs)


class TestSweep:
    def test_regimes_in_order(self):
        points = BypassTable.evaluate(
            blended_rate=10.0,
            isp_unit_costs=4.0,
            direct_unit_costs=[1.0, 6.0, 9.9, 10.1, 20.0],
            margin=0.25,
            accounting_overhead=0.0,
        ).points()
        assert [p.outcome for p in points] == [
            "efficient-bypass",
            "market-failure",
            "market-failure",
            "stays",
            "stays",
        ]

    def test_loss_only_in_failure_regime(self):
        table = BypassTable.evaluate(
            blended_rate=10.0,
            isp_unit_costs=4.0,
            direct_unit_costs=[1.0, 7.0, 15.0],
        )
        points = table.points()
        assert points[0].efficiency_loss_per_mbps == 0.0
        assert points[1].efficiency_loss_per_mbps > 0.0
        assert points[2].efficiency_loss_per_mbps == 0.0

    def test_failure_window(self):
        lo, hi = failure_window(10.0, 4.0, margin=0.25, accounting_overhead=0.5)
        assert (lo, hi) == (pytest.approx(5.5), 10.0)

    def test_window_can_be_empty(self):
        # Blended rate already at cost: tiering cannot retain the traffic.
        lo, hi = failure_window(5.0, 4.0, margin=0.25)
        assert lo >= hi


class TestBypassTable:
    def test_matches_scalar_scenarios_exactly(self):
        costs = np.linspace(0.5, 15.0, 30)
        table = BypassTable.evaluate(
            blended_rate=10.0,
            isp_unit_costs=4.0,
            direct_unit_costs=costs,
            margin=0.25,
            accounting_overhead=0.5,
        )
        for i, c_direct in enumerate(costs):
            scenario = BypassScenario(
                blended_rate=10.0,
                isp_unit_cost=4.0,
                direct_unit_cost=float(c_direct),
                margin=0.25,
                accounting_overhead=0.5,
            )
            assert OUTCOME_LABELS[table.outcomes[i]] == scenario.outcome()
            assert (
                float(table.efficiency_loss_per_mbps[i])
                == scenario.efficiency_loss_per_mbps
            )
            assert float(table.tiered_prices[i]) == scenario.tiered_price

    def test_deprecated_sweep_warns_and_is_byte_identical(self):
        costs = [1.0, 6.0, 9.9, 10.1, 20.0]
        with pytest.warns(
            DeprecationWarning, match="^repro.peering.sweep_direct_costs"
        ):
            legacy = sweep_direct_costs(
                blended_rate=10.0,
                isp_unit_cost=4.0,
                direct_unit_costs=costs,
                margin=0.25,
                accounting_overhead=0.5,
            )
        columnar = BypassTable.evaluate(
            blended_rate=10.0,
            isp_unit_costs=4.0,
            direct_unit_costs=costs,
            margin=0.25,
            accounting_overhead=0.5,
        ).points()
        assert legacy == columnar

    def test_counts_cover_all_labels(self):
        table = BypassTable.evaluate(10.0, 4.0, [1.0, 7.0, 15.0])
        counts = table.counts()
        assert set(counts) == set(OUTCOME_LABELS)
        assert counts == {
            "efficient-bypass": 1,
            "market-failure": 1,
            "stays": 1,
        }
        assert sum(counts.values()) == len(table)

    def test_total_loss_demand_weighted(self):
        table = BypassTable.evaluate(10.0, 4.0, [1.0, 7.0, 15.0])
        loss = float(table.efficiency_loss_per_mbps[1])
        assert table.total_loss() == pytest.approx(loss)
        assert table.total_loss([1.0, 10.0, 1.0]) == pytest.approx(10 * loss)

    def test_validation(self):
        with pytest.raises(ModelParameterError):
            BypassTable.evaluate(0.0, 4.0, [1.0])
        with pytest.raises(ModelParameterError):
            BypassTable.evaluate(10.0, 4.0, [1.0, -1.0])
        with pytest.raises(ModelParameterError):
            BypassTable.evaluate(10.0, 4.0, [])

    def test_from_flows_per_flow_columns(self):
        flows = load_dataset("eu_isp", n_flows=64, seed=3)
        table = bypass_for_flows(
            flows,
            CEDDemand(alpha=1.1),
            LinearDistanceCost(theta=0.2),
            blended_rate=20.0,
        )
        assert len(table) == 64
        assert table.outcomes.dtype == np.int8
        assert sum(table.counts().values()) == 64


class TestOfferingsForFlows:
    def test_matches_market_path(self):
        flows = load_dataset("eu_isp", n_flows=64, seed=3)
        demand = CEDDemand(alpha=1.1)
        cost = LinearDistanceCost(theta=0.2)
        from repro.core.market import Market

        direct = offerings_for_flows(flows, demand, cost, blended_rate=20.0)
        via_market = compare_offerings(Market(flows, demand, cost, 20.0))
        assert direct == via_market
        assert any(r.offering == "conventional-transit" for r in direct)
