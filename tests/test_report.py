"""Tests for the one-shot markdown report generator."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import generate_report

SMALL = ExperimentConfig(n_flows=24, seed=3, bundle_counts=(1, 2, 3))


@pytest.fixture(scope="module")
def report():
    return generate_report(config=SMALL)


class TestReport:
    def test_has_every_section(self, report):
        assert "## Table 1" in report
        for figure in (1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16):
            assert f"## Figure {figure} " in report, figure

    def test_mentions_configuration(self, report):
        assert "24 flows/dataset" in report
        assert "seed 3" in report

    def test_code_fences_balanced(self, report):
        assert report.count("```") % 2 == 0
        assert report.count("```") >= 2 * 16

    def test_markdown_title(self, report):
        assert report.startswith("# Reproduction report")

    def test_embeds_rendered_series(self, report):
        assert "profit capture" in report
        assert "normalized profit increase" in report
        assert "capture envelope" in report
