"""Tests for workload shaping (time series, elephants/mice)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.synth.workloads import (
    diurnal_profile,
    elephants_and_mice,
    expand_to_time_series,
)


class TestDiurnalProfile:
    def test_mean_is_one(self):
        profile = diurnal_profile(288, peak_to_trough=3.0)
        assert profile.mean() == pytest.approx(1.0)

    def test_peak_to_trough_ratio(self):
        profile = diurnal_profile(2880, peak_to_trough=4.0)
        assert profile.max() / profile.min() == pytest.approx(4.0, rel=1e-3)

    def test_peaks_at_requested_hour(self):
        profile = diurnal_profile(24, peak_to_trough=3.0, peak_hour=20.0)
        assert int(np.argmax(profile)) == 20

    def test_flat_profile(self):
        profile = diurnal_profile(10, peak_to_trough=1.0)
        assert np.allclose(profile, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_intervals": 0},
            {"n_intervals": 5, "peak_to_trough": 0.5},
            {"n_intervals": 5, "peak_hour": 24.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(DataError):
            diurnal_profile(**kwargs)


class TestTimeSeries:
    def test_shape(self, small_flows):
        series = expand_to_time_series(small_flows, n_intervals=48)
        assert series.rates_mbps.shape == (48, len(small_flows))
        assert series.n_intervals == 48

    def test_window_average_close_to_matrix(self, small_flows):
        series = expand_to_time_series(
            small_flows, n_intervals=288, noise_cv=0.05, seed=2
        )
        means = series.rates_mbps.mean(axis=0)
        assert means == pytest.approx(small_flows.demands, rel=0.05)

    def test_noiseless_series_is_profile_scaled(self, small_flows):
        series = expand_to_time_series(
            small_flows, n_intervals=24, noise_cv=0.0, peak_to_trough=2.0
        )
        ratio = series.rates_mbps[:, 0] / small_flows.demands[0]
        for j in range(1, len(small_flows)):
            assert series.rates_mbps[:, j] / small_flows.demands[j] == (
                pytest.approx(ratio)
            )

    def test_percentile_rate_above_mean(self, small_flows):
        series = expand_to_time_series(
            small_flows, n_intervals=288, peak_to_trough=3.0, seed=1
        )
        for j in range(len(small_flows)):
            assert series.percentile_rate(j, 95.0) > small_flows.demands[j]

    def test_octets_roundtrip(self, small_flows):
        series = expand_to_time_series(
            small_flows, n_intervals=12, interval_seconds=300.0, noise_cv=0.0
        )
        total = series.total_octets(0)
        expected = small_flows.demands[0] * 1e6 / 8.0 * series.window_seconds()
        assert total == pytest.approx(expected, rel=0.01)

    def test_determinism(self, small_flows):
        a = expand_to_time_series(small_flows, n_intervals=24, seed=5)
        b = expand_to_time_series(small_flows, n_intervals=24, seed=5)
        assert np.array_equal(a.rates_mbps, b.rates_mbps)

    def test_validation(self, small_flows):
        with pytest.raises(DataError):
            expand_to_time_series(small_flows, interval_seconds=0.0)
        with pytest.raises(DataError):
            expand_to_time_series(small_flows, noise_cv=-0.1)


class TestElephantsAndMice:
    def test_aggregate_and_split(self):
        flows = elephants_and_mice(
            50, aggregate_mbps=10_000.0, elephant_fraction=0.1, elephant_share=0.8
        )
        assert len(flows) == 50
        assert flows.demands.sum() == pytest.approx(10_000.0)
        elephants = np.sort(flows.demands)[-5:]
        assert elephants.sum() == pytest.approx(8_000.0, rel=0.01)

    def test_heavy_tail_visible_in_cv(self):
        flows = elephants_and_mice(100, 1000.0, 0.05, 0.9)
        assert flows.demand_cv() > 2.0

    def test_custom_distances(self):
        flows = elephants_and_mice(
            4, 100.0, 0.25, 0.5, distances_miles=[1.0, 2.0, 3.0, 4.0]
        )
        assert flows.distances.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_determinism(self):
        a = elephants_and_mice(20, 100.0, seed=3)
        b = elephants_and_mice(20, 100.0, seed=3)
        assert np.array_equal(a.demands, b.demands)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"elephant_fraction": 0.0},
            {"elephant_fraction": 1.0},
            {"elephant_share": 1.0},
            {"aggregate_mbps": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = {
            "n_flows": 10,
            "aggregate_mbps": 100.0,
            "elephant_fraction": 0.2,
            "elephant_share": 0.7,
        }
        base.update(kwargs)
        with pytest.raises(DataError):
            elephants_and_mice(**base)

    def test_distance_length_validated(self):
        with pytest.raises(DataError):
            elephants_and_mice(4, 100.0, distances_miles=[1.0, 2.0])
