"""Tests for the multi-year price-decline trajectory simulator."""

import pytest

from repro.core.cost import RegionalCost
from repro.core.trajectory import (
    YearOutcome,
    render_trajectory,
    simulate_price_decline,
)
from repro.errors import ModelParameterError
from repro.synth.datasets import load_dataset


@pytest.fixture(scope="module")
def flows():
    return load_dataset("eu_isp", n_flows=60, seed=11)


class TestSimulation:
    def test_year_zero_matches_inputs(self, flows):
        outcomes = simulate_price_decline(flows, years=1, initial_rate=20.0)
        assert len(outcomes) == 1
        assert outcomes[0].year == 0
        assert outcomes[0].blended_rate == 20.0
        assert outcomes[0].total_demand_mbps == pytest.approx(
            float(flows.demands.sum())
        )

    def test_rate_declines_thirty_percent(self, flows):
        outcomes = simulate_price_decline(
            flows, years=4, initial_rate=20.0, annual_price_decline=0.30
        )
        rates = [o.blended_rate for o in outcomes]
        for before, after in zip(rates, rates[1:]):
            assert after == pytest.approx(before * 0.7)

    def test_demand_grows_from_elasticity_and_growth(self, flows):
        outcomes = simulate_price_decline(
            flows,
            years=3,
            annual_price_decline=0.30,
            annual_demand_growth=0.25,
            alpha=1.1,
        )
        demands = [o.total_demand_mbps for o in outcomes]
        # Elastic response (0.7^-1.1 ~ 1.48) times 1.25 growth ~ 1.85x/yr.
        for before, after in zip(demands, demands[1:]):
            assert after / before == pytest.approx(
                (1.0 / 0.7) ** 1.1 * 1.25, rel=1e-9
            )

    def test_no_decline_is_a_fixed_point(self, flows):
        outcomes = simulate_price_decline(
            flows, years=3, annual_price_decline=0.0, annual_demand_growth=0.0
        )
        profits = [o.blended_profit for o in outcomes]
        assert profits[0] == pytest.approx(profits[1])
        assert profits[1] == pytest.approx(profits[2])

    def test_capture_stays_meaningful_across_years(self, flows):
        outcomes = simulate_price_decline(flows, years=5)
        for outcome in outcomes:
            assert 0.5 < outcome.profit_capture <= 1.0
            assert outcome.tiering_premium >= 0.0
            assert len(outcome.tier_prices) <= 3

    def test_tier_prices_scale_with_the_rate(self, flows):
        outcomes = simulate_price_decline(flows, years=3)
        first, last = outcomes[0], outcomes[-1]
        assert max(last.tier_prices) < max(first.tier_prices)

    def test_cost_decline_compresses_relative_spread(self, flows):
        stable = simulate_price_decline(flows, years=4, cost_decline=0.0)
        # Distance decline alone does not change *relative* costs under a
        # pure-distance model (gamma rescales), so use theta > 0 where the
        # base cost gains weight as distances shrink.
        compressed = simulate_price_decline(flows, years=4, cost_decline=0.4)
        # Premium should not explode when the cost spread compresses.
        assert (
            compressed[-1].tiering_premium
            <= stable[-1].tiering_premium + 1e-9
        )

    def test_custom_cost_model(self, flows):
        outcomes = simulate_price_decline(
            flows, years=2, cost_model=RegionalCost(theta=1.1)
        )
        assert len(outcomes) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"years": 0},
            {"annual_price_decline": 1.0},
            {"annual_price_decline": -0.1},
            {"annual_demand_growth": -0.2},
            {"cost_decline": 1.0},
        ],
    )
    def test_validation(self, flows, kwargs):
        with pytest.raises(ModelParameterError):
            simulate_price_decline(flows, **kwargs)


class TestRender:
    def test_render_contains_each_year(self, flows):
        outcomes = simulate_price_decline(flows, years=3)
        text = render_trajectory(outcomes)
        assert text.count("\n") >= 4
        assert "premium" in text


def test_year_outcome_premium_guard():
    outcome = YearOutcome(
        year=0,
        blended_rate=1.0,
        total_demand_mbps=1.0,
        blended_profit=0.0,
        tiered_profit=1.0,
        profit_capture=1.0,
        tier_prices=(1.0,),
    )
    assert outcome.tiering_premium == 0.0
