"""Tests for the pluggable sweep executors (serial / pool / socket).

Conformance contract (parametrized over every backend): identical
result bytes, cold == warm cache behavior, and zero orphan spans in the
rolled-up trace.  Plus the distributed backend's failure modes: a
SIGKILLed worker's leases are reclaimed and the sweep still completes
byte-identically; a SIGKILLed *coordinator* leaves a disk cache the
rerun resumes from; and a worker that keeps dying fails the sweep with
the named :class:`WorkerLostError` (exit code 22) instead of hanging.
"""

import argparse
import dataclasses
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.config import EXECUTOR_BACKENDS, ExecutorConfig
from repro.errors import (
    ConfigurationError,
    DataError,
    ExecutorError,
    WorkerLostError,
    exit_code_for,
)
from repro.obs import METRICS, Tracer, summarize_trace
from repro.runtime import cache as runtime_cache
from repro.runtime.executor import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    SocketExecutor,
    get_executor,
    recv_frame,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.runtime.spec import ExperimentSpec, run_specs

#: Small-but-real specs: distinct seeds so nothing collapses to one
#: cache entry, two budgets so the capture curves have shape.
SPECS = [
    ExperimentSpec(
        dataset="eu_isp", n_flows=16, seed=seed, bundle_counts=(1, 2)
    )
    for seed in range(4)
]


def _bytes(results) -> str:
    return json.dumps(results, sort_keys=True)


@pytest.fixture
def fresh_cache():
    """An empty, enabled, memory-only global cache for the test's duration."""
    runtime_cache.configure(enabled=True, directory="", fresh=True)
    yield
    runtime_cache.configure(enabled=True, directory="", fresh=True)


@pytest.fixture
def tracer():
    installed = Tracer()
    previous = obs.set_tracer(installed)
    yield installed
    obs.set_tracer(previous)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


class TestWire:
    def test_frame_round_trip(self):
        a, b = socket_module.socketpair()
        try:
            send_frame(a, {"op": "pull", "n": [1, 2.5, "x"]})
            assert recv_frame(b) == {"op": "pull", "n": [1, 2.5, "x"]}
        finally:
            a.close()
            b.close()

    def test_eof_is_none(self):
        a, b = socket_module.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_oversize_send_refused(self):
        a, b = socket_module.socketpair()
        try:
            with pytest.raises(DataError, match="MAX_FRAME_BYTES"):
                send_frame(a, {"blob": "x" * (8 * 1024 * 1024)})
        finally:
            a.close()
            b.close()

    def test_spec_survives_the_wire(self):
        spec = dataclasses.replace(SPECS[0], trace_context=("t" * 16, "s" * 8))
        wire = spec_to_wire(spec)
        json.dumps(wire)  # must already be plain data
        assert "trace_context" not in wire
        back = spec_from_wire(
            json.loads(json.dumps(wire)), trace=["t" * 16, "s" * 8]
        )
        assert back == spec  # trace_context excluded from equality anyway
        assert back.digest() == spec.digest()
        assert back.trace_context == spec.trace_context
        assert isinstance(back.strategies, tuple)
        assert isinstance(back.bundle_counts, tuple)


# ----------------------------------------------------------------------
# Config + construction
# ----------------------------------------------------------------------


class TestExecutorConfig:
    def test_defaults(self):
        config = ExecutorConfig.resolve()
        assert config.backend == "pool"
        assert config.jobs is None
        assert config.worker_count() == 1
        assert config.spawn_count() == config.worker_count()

    def test_env_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "socket")
        assert ExecutorConfig.resolve().backend == "socket"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "socket")
        assert ExecutorConfig.resolve(backend="serial").backend == "serial"

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "socket")
        namespace = argparse.Namespace(executor="serial", jobs=None)
        assert ExecutorConfig.resolve(cli=namespace).backend == "serial"

    def test_unknown_backend_is_named_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "carrier-pigeon")
        with pytest.raises(ConfigurationError, match="carrier-pigeon"):
            ExecutorConfig.resolve()

    def test_zero_jobs_means_all_cores(self):
        config = ExecutorConfig.resolve(jobs=0)
        assert config.worker_count() == (os.cpu_count() or 1)

    def test_spawn_overrides_worker_count(self):
        config = ExecutorConfig.resolve(jobs=4, spawn=0)
        assert config.worker_count() == 4
        assert config.spawn_count() == 0

    @pytest.mark.parametrize(
        "field, bad",
        [
            ("backend", "fax"),
            ("host", ""),
            ("port", -1),
            ("port", 70_000),
            ("heartbeat_ms", 0.0),
            ("lease_timeout_ms", -5.0),
            ("max_retries", -1),
            ("spawn", -2),
        ],
    )
    def test_validation(self, field, bad):
        with pytest.raises(ConfigurationError):
            ExecutorConfig.resolve(**{field: bad})

    def test_malformed_env_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_HEARTBEAT_MS", "soon")
        with pytest.raises(ConfigurationError, match="HEARTBEAT"):
            ExecutorConfig.resolve()


class TestGetExecutor:
    def test_default_is_pool(self):
        with get_executor() as executor:
            assert isinstance(executor, PoolExecutor)
            assert executor.name == "pool"

    def test_by_name(self):
        with get_executor("serial") as executor:
            assert isinstance(executor, SerialExecutor)

    def test_by_config(self):
        with get_executor(ExecutorConfig.resolve(backend="serial")) as ex:
            assert isinstance(ex, SerialExecutor)

    def test_by_experiment_config_shape(self):
        from repro.experiments.config import ExperimentConfig

        shaped = ExperimentConfig(jobs=3, executor="pool")
        with get_executor(shaped) as executor:
            assert isinstance(executor, PoolExecutor)
            assert executor.jobs == 3

    def test_unknown_name_is_named_error(self):
        with pytest.raises(ConfigurationError, match="smoke-signal"):
            get_executor("smoke-signal")

    def test_cli_flag_parses(self):
        args = build_parser().parse_args(["table1", "--executor", "socket"])
        assert args.executor == "socket"
        assert ExecutorConfig.resolve(cli=args).backend == "socket"


# ----------------------------------------------------------------------
# Conformance: every backend, same bytes / same cache behavior / no
# orphan spans
# ----------------------------------------------------------------------


class TestConformance:
    @pytest.fixture(scope="class")
    def serial_bytes(self):
        runtime_cache.configure(enabled=True, directory="", fresh=True)
        reference = _bytes(run_specs(SPECS, executor="serial", use_cache=False))
        runtime_cache.configure(enabled=True, directory="", fresh=True)
        return reference

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_backends_byte_identical(self, fresh_cache, serial_bytes, backend):
        results = run_specs(SPECS, jobs=2, executor=backend, use_cache=False)
        assert _bytes(results) == serial_bytes

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_cold_equals_warm(self, fresh_cache, backend):
        cold = run_specs(SPECS, jobs=2, executor=backend)
        METRICS.reset()
        warm = run_specs(SPECS, jobs=2, executor=backend)
        assert _bytes(warm) == _bytes(cold)
        counters = METRICS.snapshot()["counters"]
        assert counters.get("markets_built", 0) == 0
        assert counters.get("cache_hits:result", 0) == len(SPECS)

    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_zero_orphan_spans(self, fresh_cache, tracer, backend):
        with tracer.span("driver") as driver:
            run_specs(SPECS, jobs=2, executor=backend, use_cache=False)
        spans = tracer.drain()
        units = [s for s in spans if s.name == "runtime.evaluate_spec"]
        assert len(units) == len(SPECS)
        assert {s.trace_id for s in units} == {driver.trace_id}
        summary = summarize_trace(spans)
        assert summary["orphans"] == 0
        if backend == "socket":
            # The work demonstrably ran in other processes.
            assert all(s.pid != os.getpid() for s in units)
            assert len(summary["processes"]) >= 2

    def test_caller_owned_executor_stays_open(self, fresh_cache):
        with get_executor("serial") as executor:
            first = run_specs(SPECS[:2], executor=executor, use_cache=False)
            second = run_specs(SPECS[:2], executor=executor, use_cache=False)
        assert _bytes(first) == _bytes(second)

    def test_incomplete_sweep_is_named_error(self, fresh_cache):
        class Lossy(Executor):
            name = "lossy"

            def submit(self, specs):
                return iter(())  # pragma: no branch

        with pytest.raises(ExecutorError, match="incomplete"):
            run_specs(SPECS[:2], executor=Lossy(), use_cache=False)


# ----------------------------------------------------------------------
# SocketExecutor chaos
# ----------------------------------------------------------------------


class TestSocketChaos:
    def test_worker_sigkill_mid_sweep_still_completes(self, fresh_cache):
        """Kill one of two workers after the first results; the survivor
        picks up the reclaimed leases and the sweep ends byte-identical."""
        specs = [
            ExperimentSpec(
                dataset="eu_isp", n_flows=16, seed=seed, bundle_counts=(1, 2)
            )
            for seed in range(10)
        ]
        reference = _bytes(run_specs(specs, executor="serial", use_cache=False))
        runtime_cache.configure(fresh=True)
        with SocketExecutor(jobs=2) as executor:
            victim = executor.worker_pids()[0]
            seen = {}
            stream = executor.submit(
                [
                    dataclasses.replace(s, trace_context=None)
                    for s in specs
                ]
            )
            for count, (digest, result) in enumerate(stream, start=1):
                seen[digest] = result
                if count == 2:
                    os.kill(victim, signal.SIGKILL)
        assert len(seen) == len(specs)
        results = [seen[spec.digest()] for spec in specs]
        assert _bytes(results) == reference

    def test_worker_lost_error_when_retries_exhausted(self, fresh_cache):
        """A worker that takes a lease and dies, with max_retries=0,
        fails the sweep with the named error — and its exit code."""
        with SocketExecutor(jobs=1, spawn=0, max_retries=0) as executor:

            def fake_worker():
                sock = socket_module.create_connection(
                    (executor.host, executor.port)
                )
                try:
                    send_frame(sock, {"op": "hello", "pid": -1})
                    while True:
                        send_frame(sock, {"op": "pull"})
                        frame = recv_frame(sock)
                        if frame is None or frame["op"] == "done":
                            return
                        if frame["op"] == "spec":
                            return  # die holding the lease
                        time.sleep(float(frame.get("ms", 50)) / 1000.0)
                finally:
                    sock.close()

            saboteur = threading.Thread(target=fake_worker, daemon=True)
            saboteur.start()
            with pytest.raises(WorkerLostError, match="retries exhausted"):
                list(executor.submit(SPECS[:1]))
            saboteur.join(timeout=5.0)
        assert exit_code_for(WorkerLostError("x")) == 22
        assert exit_code_for(ExecutorError("x")) == 21

    def test_all_workers_dead_fails_fast(self, fresh_cache):
        """Every local worker gone with work outstanding -> named error,
        not a hang."""
        with SocketExecutor(jobs=1, heartbeat_ms=50.0) as executor:
            for pid in executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerLostError):
                list(executor.submit(SPECS[:2]))

    def test_coordinator_sigkill_resumes_from_disk_cache(self, tmp_path):
        """SIGKILL the whole driver mid-sweep; a rerun picks up the
        already-spilled results from the disk cache and finishes
        byte-identical to a serial run."""
        cache_dir = tmp_path / "cache"
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import json, sys\n"
            "from repro.runtime.spec import ExperimentSpec, run_specs\n"
            "specs = [\n"
            "    ExperimentSpec(dataset='eu_isp', n_flows=16, seed=s,\n"
            "                   bundle_counts=(1, 2))\n"
            "    for s in range(30)\n"
            "]\n"
            "results = run_specs(specs, jobs=2, executor=sys.argv[1])\n"
            "print(json.dumps(results, sort_keys=True))\n"
        )
        env = dict(
            os.environ,
            REPRO_CACHE_DIR=str(cache_dir),
            PYTHONPATH=os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            ),
        )

        def cached_results() -> int:
            return sum(1 for _ in cache_dir.glob("result/*.pkl"))

        victim = subprocess.Popen(
            [sys.executable, str(driver), "socket"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60.0
        while cached_results() < 3 and time.monotonic() < deadline:
            assert victim.poll() is None, "sweep finished before the kill"
            time.sleep(0.01)
        victim.kill()
        victim.wait(timeout=30.0)
        spilled = cached_results()
        assert 0 < spilled < 30, spilled  # died mid-sweep, partial spill

        resumed = subprocess.run(
            [sys.executable, str(driver), "socket"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert resumed.returncode == 0, resumed.stderr
        serial = subprocess.run(
            [sys.executable, str(driver), "serial"],
            env=dict(env, REPRO_CACHE_DIR=str(tmp_path / "serial-cache")),
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert serial.returncode == 0, serial.stderr
        assert resumed.stdout == serial.stdout


# ----------------------------------------------------------------------
# `repro workers` CLI
# ----------------------------------------------------------------------


class TestWorkersCommand:
    def test_malformed_connect_is_configuration_error(self, capsys):
        assert main(["workers", "--connect", "nonsense"]) == 15
        assert "HOST:PORT" in capsys.readouterr().err

    def test_cli_worker_serves_a_sweep(self, fresh_cache, capsys):
        reference = _bytes(
            run_specs(SPECS[:2], executor="serial", use_cache=False)
        )
        runtime_cache.configure(fresh=True)
        with SocketExecutor(jobs=1, spawn=0) as executor:
            exit_codes = []
            cli = threading.Thread(
                target=lambda: exit_codes.append(
                    main(
                        [
                            "workers",
                            "--connect",
                            f"{executor.host}:{executor.port}",
                        ]
                    )
                ),
                daemon=True,
            )
            cli.start()
            seen = {}
            for digest, result in executor.submit(SPECS[:2]):
                seen[digest] = result
        cli.join(timeout=10.0)
        assert exit_codes == [0]
        assert "worker exited after 2 spec(s)" in capsys.readouterr().out
        results = [seen[spec.digest()] for spec in SPECS[:2]]
        assert _bytes(results) == reference
