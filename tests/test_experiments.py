"""Tests for the experiment drivers (one per paper table/figure).

Heavy figure drivers run on a shrunken configuration here; the full-size
runs (and the paper-claim assertions) live in ``benchmarks/``.
"""

import dataclasses

import pytest

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.experiments.figures import (
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    figure8_data,
    figure9_data,
)
from repro.experiments.runner import (
    build_market,
    demand_model,
    render_series_table,
)
from repro.experiments.sweeps import (
    THETA_VALUES,
    figure14_data,
    figure16_data,
    robustness_summary,
    theta_sweep,
)
from repro.experiments.tables import render_table1, table1_data

#: Small config so driver tests stay fast.
TINY = ExperimentConfig(n_flows=24, seed=3, bundle_counts=(1, 2, 3))


class TestRunner:
    def test_demand_model_families(self):
        assert demand_model("ced").name == "ced"
        assert demand_model("logit").name == "logit"
        with pytest.raises(ValueError):
            demand_model("cobb-douglas")

    def test_build_market_defaults(self):
        market = build_market("eu_isp", config=TINY)
        assert market.n_flows == 24
        assert market.blended_rate == TINY.blended_rate

    def test_render_series_table_alignment(self):
        text = render_series_table(
            "Title", "who", [1, 2], {"a": [0.1, 0.2], "bbbb": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "0.100" in text and "0.400" in text
        # Rows align under the header columns.
        assert len(lines[3]) == len(lines[4])


class TestTable1Driver:
    def test_rows_cover_all_datasets(self):
        rows = table1_data(config=TINY)
        assert [r["dataset"] for r in rows] == ["eu_isp", "cdn", "internet2"]

    def test_render_contains_both_columns(self):
        text = render_table1(table1_data(config=TINY))
        assert "paper / measured" in text
        assert "eu_isp" in text


class TestSmallFigureDrivers:
    def test_figure1(self):
        data = figure1_data()
        assert data["profit_gain"] > 0
        assert data["surplus_gain"] > 0

    def test_figure2(self):
        data = figure2_data(n_points=10)
        assert len(data["points"]) == 10
        assert data["failure_window"][0] < data["failure_window"][1]

    def test_figure3(self):
        data = figure3_data(alphas=(1.5, 2.5), n_points=10)
        assert set(data["curves"]) == {"alpha=1.5", "alpha=2.5"}
        assert all(len(c) == 10 for c in data["curves"].values())

    def test_figure4(self):
        data = figure4_data(costs=(1.0, 2.0))
        assert data["maxima"]["c=1.0"]["price"] == pytest.approx(2.0)

    def test_figure5(self):
        data = figure5_data(n_points=12)
        for curve in data["curves"].values():
            assert len(curve) == 12

    def test_figure6_recovers_generating_curves(self):
        data = figure6_data()
        assert set(data) == {"itu", "ntt"}
        for fit in data.values():
            assert fit["k_fit"] == pytest.approx(fit["k_true"], abs=0.05)


class TestStrategyPanels:
    @pytest.mark.parametrize("driver", [figure8_data, figure9_data])
    def test_panels_shape(self, driver):
        panels = driver(config=TINY)
        assert set(panels) == {"eu_isp", "cdn", "internet2"}
        for panel in panels.values():
            capture = panel["capture"]
            assert "optimal" in capture and "profit-weighted" in capture
            assert all(len(curve) == 3 for curve in capture.values())

    def test_capture_starts_at_zero(self):
        panels = figure8_data(config=TINY)
        for panel in panels.values():
            for curve in panel["capture"].values():
                assert curve[0] == pytest.approx(0.0, abs=1e-6)


class TestThetaSweeps:
    @pytest.mark.parametrize("cost_model", sorted(THETA_VALUES))
    def test_sweep_shapes(self, cost_model):
        data = theta_sweep(cost_model, config=TINY, thetas=THETA_VALUES[cost_model][:2])
        for panel in data["panels"].values():
            assert set(panel["normalized_gain"]) == set(
                THETA_VALUES[cost_model][:2]
            )
            # Normalization: nothing exceeds 1.
            for curve in panel["normalized_gain"].values():
                assert max(curve) <= 1.0 + 1e-9

    def test_unknown_cost_model(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            theta_sweep("quadratic", config=TINY)

    def test_exactly_one_curve_touches_one(self):
        data = theta_sweep("linear", config=TINY)
        for panel in data["panels"].values():
            peaks = [max(c) for c in panel["normalized_gain"].values()]
            assert max(peaks) <= 1.0 + 1e-9


class TestEnvelopes:
    def test_figure14_shape(self):
        data = figure14_data(alphas=(1.2, 2.0), config=TINY)
        assert data["alphas"] == [1.2, 2.0]
        for family in ("ced", "logit"):
            for network in ("eu_isp", "cdn", "internet2"):
                assert len(data["panels"][family][network]) == 3

    def test_envelope_is_a_lower_bound(self):
        alphas = (1.2, 2.0)
        data = figure14_data(alphas=alphas, config=TINY)
        # Recompute one point directly and check the min-envelope bounds it.
        from repro.core.bundling import ProfitWeightedBundling

        config = dataclasses.replace(TINY, alpha=1.2)
        market = build_market("eu_isp", family="ced", config=config)
        direct = market.tiered_outcome(ProfitWeightedBundling(), 2).profit_capture
        assert data["panels"]["ced"]["eu_isp"][1] <= direct + 1e-12

    def test_figure16_validates_feasibility(self):
        bad = dataclasses.replace(TINY, alpha=1.1, blended_rate=20.0)
        with pytest.raises(ValueError, match="s0"):
            figure16_data(s0_values=(0.01,), config=bad)

    def test_robustness_summary_keys(self):
        summary = robustness_summary(config=TINY)
        assert set(summary) == {
            "eu_isp_ced_two_bundles_min_over_alpha",
            "eu_isp_ced_two_bundles_min_over_p0",
        }


def test_default_config_matches_paper():
    assert DEFAULT_CONFIG.alpha == 1.1
    assert DEFAULT_CONFIG.blended_rate == 20.0
    assert DEFAULT_CONFIG.theta == 0.2
    assert DEFAULT_CONFIG.s0 == 0.2
    assert DEFAULT_CONFIG.bundle_counts == (1, 2, 3, 4, 5, 6)
