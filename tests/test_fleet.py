"""Tests for the sharded multi-process quote fleet: shared-memory
snapshot segments, shard workers with respawn, graceful cutover, and the
asyncio front door.  Run cleanly under ``-W error::ResourceWarning`` —
leaked segments, pipes, or sockets are bugs here, not noise."""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.accounting.tier_designer import TierDesign
from repro.config import FleetConfig
from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import ConfigurationError, DataError
from repro.fleet import (
    AttachedSnapshot,
    FleetClient,
    FrontDoor,
    SharedPricingSnapshot,
    SharedSnapshot,
    ShardFleet,
    run_socket_load,
    segment_name,
    shard_of,
)
from repro.obs import METRICS
from repro.serve import (
    PricingSnapshot,
    QuoteEngine,
    QuoteRequest,
    SnapshotRegistry,
    generate_requests,
)
from repro.stream.repricer import DesignPublication

P0 = 20.0
COST_MODEL = LinearDistanceCost(theta=0.2)


def make_market(scale=1.0):
    flows = FlowSet(
        demands_mbps=[800.0 * scale, 300.0, 120.0, 60.0 * scale, 20.0, 5.0],
        distances_miles=[2.0, 15.0, 60.0, 250.0, 900.0, 4000.0],
        dsts=[f"10.0.{i}.1" for i in range(6)],
    )
    return Market(flows, CEDDemand(1.1), COST_MODEL, P0)


def make_snapshot(scale=1.0, version=1, config_digest="regime-a"):
    market = make_market(scale)
    outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
    design = TierDesign.from_outcome(market, outcome)
    return PricingSnapshot.build(
        design,
        version=version,
        config_digest=config_digest,
        blended_rate=P0,
        gamma=market.gamma,
        reference_distance_miles=float(market.flows.distances.max()),
    )


def shm_segments():
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if "repro-snap" in name
        )
    except FileNotFoundError:  # non-Linux fallback: can't introspect
        return []


@pytest.fixture
def snapshot():
    return make_snapshot()


@pytest.fixture
def fleet(snapshot):
    config = FleetConfig(
        shards=2, heartbeat_ms=25.0, timeout_ms=5000.0, queue_depth=2048
    )
    fleet = ShardFleet(COST_MODEL, config, fallback_blended_rate=P0)
    with fleet:
        fleet.publish(snapshot)
        yield fleet
    assert shm_segments() == []


# ----------------------------------------------------------------------
# Shared-memory segments
# ----------------------------------------------------------------------


class TestSharedSnapshot:
    def test_round_trip_preserves_everything(self, snapshot):
        segment = SharedSnapshot.publish(snapshot)
        attached = AttachedSnapshot(segment.name)
        shared = attached.snapshot
        assert shared.version == snapshot.version
        assert shared.digest == snapshot.digest
        assert shared.config_digest == snapshot.config_digest
        assert shared.blended_rate == snapshot.blended_rate
        assert shared.gamma == snapshot.gamma
        assert (
            shared.reference_distance_miles
            == snapshot.reference_distance_miles
        )
        assert shared.rates == snapshot.rates
        assert shared.destinations == snapshot.destinations
        del shared
        attached.close()
        segment.unlink()

    def test_lookups_match_original(self, snapshot):
        queries = [
            "10.0.0.1",
            "10.0.5.1",
            "0.0.0.0",
            "99.99.99.99",
            "10.0.2.1",
            "",
            "a-destination-far-wider-than-the-table-column",
        ]
        with SharedSnapshot.publish(snapshot) as segment:
            with AttachedSnapshot(segment.name) as attached:
                np.testing.assert_array_equal(
                    attached.snapshot.tiers_for(queries),
                    snapshot.tiers_for(queries),
                )
                np.testing.assert_allclose(
                    attached.snapshot.prices_for_tiers(
                        attached.snapshot.tiers_for(queries)
                    ),
                    snapshot.prices_for_tiers(snapshot.tiers_for(queries)),
                )

    def test_attach_is_zero_copy(self, snapshot):
        with SharedSnapshot.publish(snapshot) as segment:
            with AttachedSnapshot(segment.name) as attached:
                shared = attached.snapshot
                # Views into the mapped buffer, not copies: numpy does not
                # own the data and the arrays are read-only.
                for array in (
                    shared._dsts,
                    shared._tiers,
                    shared._rate_by_tier,
                ):
                    assert not array.flags["OWNDATA"]
                    assert not array.flags["WRITEABLE"]
                with pytest.raises(ValueError):
                    shared._tiers[0] = 99
                assert isinstance(shared, SharedPricingSnapshot)
                del shared, array

    def test_segment_name_is_versioned_by_digest(self, snapshot):
        with SharedSnapshot.publish(snapshot) as segment:
            assert segment.name == segment_name(
                snapshot.digest, snapshot.version
            )
            assert segment.name.startswith("repro-snap-")
            assert segment.name.endswith(f"-v{snapshot.version}")

    def test_unlink_removes_the_segment_and_is_idempotent(self, snapshot):
        segment = SharedSnapshot.publish(snapshot)
        name = segment.name
        assert any(name in entry for entry in shm_segments())
        segment.unlink()
        segment.unlink()
        assert shm_segments() == []
        with pytest.raises(FileNotFoundError):
            AttachedSnapshot(name)

    def test_stale_crashed_segment_is_replaced(self, snapshot):
        # Simulate a publisher that died without cleanup: the name exists
        # but nobody owns it.  Re-publishing the same content must win.
        from repro.fleet import shm as shm_module

        stale = SharedSnapshot.publish(snapshot)
        shm_module._OWNED.pop(stale.name, None)  # "crash": no cleanup
        stale._unlinked = True  # drop our handle without unlinking
        shm_module._close_segment(stale._shm)  # the crashed mapping is gone
        fresh = SharedSnapshot.publish(snapshot)
        with AttachedSnapshot(fresh.name) as attached:
            assert attached.version == snapshot.version
        fresh.unlink()

    def test_engine_quotes_identically_off_a_shared_snapshot(self, snapshot):
        requests = [
            QuoteRequest(dst="10.0.0.1", volume_mbps=4.0, distance_miles=10.0),
            QuoteRequest(dst="10.0.4.1", volume_mbps=1.0, distance_miles=900.0),
            QuoteRequest(dst="203.0.113.9", volume_mbps=2.0, distance_miles=5.0),
            QuoteRequest(dst=None, volume_mbps=1.0, distance_miles=1.0),
        ]
        plain = SnapshotRegistry()
        plain.adopt(snapshot)
        with SharedSnapshot.publish(snapshot) as segment:
            with AttachedSnapshot(segment.name) as attached:
                shared = SnapshotRegistry()
                shared.adopt(attached.snapshot)
                for a, b in zip(
                    QuoteEngine(plain, COST_MODEL, P0).quote_batch(requests),
                    QuoteEngine(shared, COST_MODEL, P0).quote_batch(requests),
                ):
                    assert a == b


class TestRegistryAdopt:
    def test_adopt_preserves_the_snapshot_version(self):
        externally_versioned = make_snapshot(version=41)
        registry = SnapshotRegistry()
        adopted = registry.adopt(externally_versioned)
        assert adopted is externally_versioned
        assert registry.version == 41
        assert registry.current() is externally_versioned

    def test_publish_snapshot_reversions_but_adopt_does_not(self):
        registry = SnapshotRegistry()
        reversioned = registry.publish_snapshot(make_snapshot(version=41))
        assert reversioned.version == 1
        registry.adopt(make_snapshot(version=9))
        assert registry.version == 9


class TestQuoteColumns:
    """The columnar engine path the shard pipes ride on."""

    def test_columns_rebuild_to_the_exact_object_answers(self, snapshot):
        from repro.fleet.shard import _quotes_from_columns

        registry = SnapshotRegistry()
        registry.adopt(snapshot)
        engine = QuoteEngine(registry, COST_MODEL, fallback_blended_rate=P0)
        requests = generate_requests(
            100, seed=2, snapshot=snapshot, unknown_fraction=0.3
        )
        expected = engine.quote_batch(requests)
        payload = engine.quote_columns(
            [r.dst for r in requests],
            [r.volume_mbps for r in requests],
            [r.distance_miles for r in requests],
        )
        assert not payload["degraded"]
        assert _quotes_from_columns(payload, len(requests)) == expected

    def test_degrades_as_a_whole_batch_without_a_snapshot(self):
        from repro.fleet.shard import _quotes_from_columns

        engine = QuoteEngine(
            SnapshotRegistry(), COST_MODEL, fallback_blended_rate=P0
        )
        payload = engine.quote_columns(["10.0.0.1", None], [1.0, 2.0], [1.0, 9.0])
        assert payload["degraded"]
        quotes = _quotes_from_columns(payload, 2)
        assert all(q.degraded for q in quotes)
        assert all(q.unit_price == pytest.approx(P0) for q in quotes)
        assert quotes[0].reason == "no snapshot published"


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for n in (1, 2, 3, 8):
            for dst in ("10.0.0.1", "a", "198.51.100.255", ""):
                sid = shard_of(dst, n)
                assert 0 <= sid < n
                assert sid == shard_of(dst, n)

    def test_none_routes_to_shard_zero(self):
        assert shard_of(None, 8) == 0

    def test_spreads_across_shards(self):
        sids = {shard_of(f"10.{i}.{i}.1", 4) for i in range(64)}
        assert sids == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# ShardFleet
# ----------------------------------------------------------------------


class TestShardFleet:
    def test_requires_start(self, snapshot):
        fleet = ShardFleet(COST_MODEL, FleetConfig(shards=1))
        with pytest.raises(ConfigurationError):
            fleet.quote_batch([QuoteRequest(dst="10.0.0.1")])

    def test_empty_batch(self, fleet):
        assert fleet.quote_batch([]) == []

    def test_quotes_match_the_in_process_engine(self, fleet, snapshot):
        requests = generate_requests(
            200, seed=7, snapshot=snapshot, unknown_fraction=0.25
        )
        registry = SnapshotRegistry()
        registry.adopt(snapshot)
        engine = QuoteEngine(registry, COST_MODEL, P0)
        expected = engine.quote_batch(requests)
        actual = fleet.quote_batch(requests)
        assert len(actual) == len(expected)
        for ours, theirs in zip(actual, expected):
            assert ours.tier == theirs.tier
            assert ours.known == theirs.known
            assert not ours.degraded
            assert ours.unit_price == pytest.approx(theirs.unit_price)
            assert ours.unit_cost == pytest.approx(theirs.unit_cost)
            assert ours.profit_contribution == pytest.approx(
                theirs.profit_contribution
            )
            assert ours.snapshot_digest == snapshot.digest
            # The fleet stamps its own (fleet-wide) version.
            assert ours.snapshot_version == fleet.version

    def test_regime_pinned_requests_round_trip_the_object_wire(
        self, fleet, snapshot
    ):
        # Pinned regimes disqualify a batch from the columnar wire; the
        # object fallback must answer with the engine's exact semantics.
        matched, mismatched = fleet.quote_batch(
            [
                QuoteRequest(dst="10.0.0.1", regime="regime-a"),
                QuoteRequest(dst="10.0.0.1", regime="regime-z"),
            ]
        )
        assert not matched.degraded and matched.known
        assert mismatched.degraded
        assert "regime mismatch" in mismatched.reason

    def test_distinct_worker_pids(self, fleet):
        pids = fleet.pids()
        assert len(pids) == 2
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_publish_bumps_version_and_unlinks_the_old_segment(
        self, fleet, snapshot
    ):
        before = fleet.version
        old_segments = shm_segments()
        assert len(old_segments) == 1
        fleet.publish(make_snapshot(scale=2.0))
        assert fleet.version == before + 1
        fresh = shm_segments()
        assert len(fresh) == 1
        assert fresh != old_segments
        quotes = fleet.quote_batch(
            [QuoteRequest(dst="10.0.0.1", volume_mbps=1.0, distance_miles=2.0)]
        )
        assert quotes[0].snapshot_version == fleet.version

    def test_no_quote_from_a_stale_design_after_cutover(self, fleet, snapshot):
        """Once publish() returns, every answer carries the new version."""
        requests = generate_requests(64, seed=3, snapshot=snapshot)
        fleet.quote_batch(requests)
        fleet.publish(make_snapshot(scale=3.0))
        flipped = fleet.version
        for _ in range(5):
            versions = {
                quote.snapshot_version
                for quote in fleet.quote_batch(requests)
            }
            assert versions == {flipped}

    def test_chaos_kill_respawns_and_reattaches_current_version(
        self, fleet, snapshot
    ):
        requests = generate_requests(128, seed=11, snapshot=snapshot)
        victim = fleet.pids()[0]
        os.kill(victim, signal.SIGKILL)
        # Keep load flowing while the shard is down: answers must be
        # either real quotes or explicit degraded ones — never errors.
        for quote in fleet.quote_batch(requests):
            assert quote.degraded in (True, False)
        deadline = time.time() + 10.0
        while fleet.pids()[0] in (victim, None) and time.time() < deadline:
            time.sleep(0.02)
        assert fleet.pids()[0] not in (victim, None), "shard never respawned"
        assert fleet.respawns >= 1
        # The respawned worker attached the *current* segment: quotes
        # answer with the live version, not a stale one.
        fleet.publish(make_snapshot(scale=1.5))
        deadline = time.time() + 10.0
        while time.time() < deadline:
            quotes = fleet.quote_batch(requests)
            if not any(q.degraded for q in quotes):
                break
            time.sleep(0.05)
        versions = {q.snapshot_version for q in quotes}
        assert versions == {fleet.version}
        assert not any(q.degraded for q in quotes)

    def test_crash_mid_batch_degrades_with_reason(self, snapshot):
        config = FleetConfig(shards=1, heartbeat_ms=10_000.0, timeout_ms=500.0)
        fleet = ShardFleet(COST_MODEL, config, fallback_blended_rate=P0)
        with fleet:
            fleet.publish(snapshot)
            os.kill(fleet.pids()[0], signal.SIGKILL)
            time.sleep(0.05)
            quotes = fleet.quote_batch(
                [QuoteRequest(dst="10.0.0.1", volume_mbps=1.0)]
            )
            assert quotes[0].degraded
            assert quotes[0].reason in ("shard crashed", "shard down")
            assert quotes[0].unit_price == pytest.approx(P0)

    def test_stop_merges_worker_counters(self, snapshot):
        config = FleetConfig(shards=1, heartbeat_ms=5_000.0)
        fleet = ShardFleet(COST_MODEL, config, fallback_blended_rate=P0)
        before = METRICS.counter("serve.quotes")
        with fleet:
            fleet.publish(snapshot)
            fleet.quote_batch(
                generate_requests(50, seed=1, snapshot=snapshot)
            )
            # Workers count their engine work in their own process...
            assert METRICS.counter("serve.quotes") == before
        # ...and stop() folds it back into the coordinator's registry.
        assert METRICS.counter("serve.quotes") == before + 50

    def test_subscriber_publishes_and_cuts_over(self, fleet, snapshot):
        market = make_market(scale=4.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        publication = DesignPublication(
            design=TierDesign.from_outcome(market, outcome),
            gamma=float(market.gamma),
            blended_rate=P0,
            window_end_ms=1234,
            sequence=1,
            reference_distance_miles=float(market.flows.distances.max()),
        )
        before = fleet.version
        fleet.subscriber("regime-b")(publication)
        assert fleet.version == before + 1
        quote = fleet.quote_batch([QuoteRequest(dst="10.0.0.1")])[0]
        assert quote.snapshot_version == fleet.version

    def test_stats_shape(self, fleet):
        stats = fleet.stats()
        assert stats["shards"] == 2
        assert len(stats["pids"]) == 2
        assert stats["version"] >= 1
        assert stats["segment"] is not None


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------


class TestFrontDoor:
    def test_quote_and_stats_frames(self, fleet, snapshot):
        async def scenario():
            async with FrontDoor(fleet) as door:
                assert door.port not in (None, 0)
                async with await FleetClient.connect(
                    door.host, door.port
                ) as client:
                    answers = await client.quote_batch(
                        [
                            {
                                "dst": "10.0.0.1",
                                "volume_mbps": 2.0,
                                "distance_miles": 50.0,
                            },
                            {"dst": "203.0.113.5"},
                        ]
                    )
                    assert len(answers) == 2
                    assert answers[0]["tier"] is not None
                    assert answers[0]["known"] and not answers[0]["degraded"]
                    assert not answers[1]["known"]
                    assert (
                        answers[0]["snapshot_version"] == fleet.version
                    )
                    stats = await client.stats()
                    assert stats["shards"] == 2
                    assert "request_latency_ms" in stats
                    return answers

        asyncio.run(scenario())

    def test_invalid_quotes_get_inline_errors(self, fleet):
        async def scenario():
            async with FrontDoor(fleet) as door:
                async with await FleetClient.connect(
                    door.host, door.port
                ) as client:
                    answers = await client.quote_batch(
                        [
                            {"dst": "10.0.0.1"},
                            {"dst": "10.0.1.1", "volume_mbps": -5.0},
                            {"dst": "10.0.2.1", "bogus_field": 1},
                            "not-an-object",
                        ]
                    )
                    assert "error" not in answers[0]
                    assert "volume" in answers[1]["error"]
                    assert "bogus_field" in answers[2]["error"]
                    assert "error" in answers[3]

        asyncio.run(scenario())

    def test_frame_without_quotes_is_rejected(self, fleet):
        async def scenario():
            async with FrontDoor(fleet) as door:
                async with await FleetClient.connect(
                    door.host, door.port
                ) as client:
                    with pytest.raises(DataError):
                        await client.quote_batch([])

        asyncio.run(scenario())

    def test_pipelined_frames_correlate_by_id(self, fleet, snapshot):
        async def scenario():
            async with FrontDoor(fleet) as door:
                async with await FleetClient.connect(
                    door.host, door.port
                ) as client:
                    batches = [
                        [
                            {
                                "dst": dst,
                                "volume_mbps": float(i + 1),
                                "distance_miles": 10.0,
                            }
                            for dst in snapshot.destinations
                        ]
                        for i in range(8)
                    ]
                    replies = await asyncio.gather(
                        *(client.quote_batch(batch) for batch in batches)
                    )
                    for i, answers in enumerate(replies):
                        assert len(answers) == len(snapshot.destinations)
                        assert all(a["known"] for a in answers)

        asyncio.run(scenario())

    def test_socket_load_reports_throughput_and_tail(self, fleet, snapshot):
        requests = generate_requests(
            400, seed=5, snapshot=snapshot, unknown_fraction=0.2
        )

        async def scenario():
            async with FrontDoor(fleet) as door:
                return await run_socket_load(
                    door.host, door.port, requests, frame_size=50
                )

        report = asyncio.run(scenario())
        assert report.answered == 400
        assert report.priced == 400
        assert report.quotes_per_second > 0
        assert report.latency_ms["p99"] >= report.latency_ms["p50"] > 0
        assert report.versions == (fleet.version,)

    def test_admission_control_sheds_oldest_under_overload(
        self, fleet, snapshot, monkeypatch
    ):
        config = FleetConfig(shards=2, queue_depth=8, max_batch=4)
        real_quote_shard = fleet.quote_shard

        def slow_quote_shard(sid, requests, timeout_s=None):
            time.sleep(0.05)
            return real_quote_shard(sid, requests, timeout_s)

        monkeypatch.setattr(fleet, "quote_shard", slow_quote_shard)

        async def scenario():
            async with FrontDoor(fleet, config) as door:
                async with await FleetClient.connect(
                    door.host, door.port
                ) as client:
                    # Far more in flight than 2 shards * (8 queued + 4 in
                    # a batch) can hold: the overflow must shed, and every
                    # request still gets an answer.
                    batches = [
                        [
                            {
                                "dst": f"10.9.{i}.{j}",
                                "volume_mbps": 1.0,
                                "distance_miles": 1.0,
                            }
                            for j in range(16)
                        ]
                        for i in range(12)
                    ]
                    replies = await asyncio.gather(
                        *(client.quote_batch(batch) for batch in batches)
                    )
                    answers = [a for reply in replies for a in reply]
                    assert len(answers) == 12 * 16
                    shed = [
                        a
                        for a in answers
                        if a["degraded"]
                        and a["reason"] == "shed by admission control"
                    ]
                    assert shed, "overload never shed anything"
                    return len(shed)

        shed = asyncio.run(scenario())
        assert shed > 0


# ----------------------------------------------------------------------
# Fleet end to end: stream publication -> cutover under live load
# ----------------------------------------------------------------------


class TestCutoverUnderLoad:
    def test_socket_load_across_a_cutover_sees_no_stale_version(
        self, fleet, snapshot
    ):
        requests = generate_requests(600, seed=13, snapshot=snapshot)

        async def scenario():
            async with FrontDoor(fleet) as door:
                first = await run_socket_load(
                    door.host, door.port, requests[:300], frame_size=30
                )
                flipped = fleet.publish(make_snapshot(scale=5.0))
                second = await run_socket_load(
                    door.host, door.port, requests[300:], frame_size=30
                )
                return first, second, flipped

        first, second, flipped = asyncio.run(scenario())
        assert first.versions == (flipped.version - 1,)
        # The cutover completed before the second load began: zero
        # answers from the old design.
        assert second.versions == (flipped.version,)
