"""Tests for the binary NetFlow v5 codec."""

import pytest

from repro.errors import DataError
from repro.netflow.codec import (
    EngineMap,
    MAX_ENGINES,
    MAX_RECORDS_PER_PACKET,
    decode_packet,
    decode_packets,
    encode_packet,
    encode_packets,
)
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP
from repro.synth.trace import generate_network_trace


@pytest.fixture
def engines():
    return EngineMap(["R1", "R2", "R3"])


def record(i=0, router="R1", sampling=1, octets=1000):
    return NetFlowRecord(
        key=FlowKey(f"10.0.0.{i + 1}", "192.0.2.9", 40000 + i, 443, PROTO_TCP),
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=10,
        last_ms=20,
        router=router,
        input_if=1,
        output_if=2,
        sampling_interval=sampling,
    )


class TestEngineMap:
    def test_roundtrip(self, engines):
        for router in ("R1", "R2", "R3"):
            assert engines.router(engines.engine_id(router)) == router

    def test_unknowns(self, engines):
        with pytest.raises(DataError):
            engines.engine_id("R9")
        with pytest.raises(DataError):
            engines.router(99)

    def test_duplicates_rejected(self):
        with pytest.raises(DataError):
            EngineMap(["R1", "R1"])

    def test_two_byte_limit(self):
        # 257 routers fit now that engine_type carries the high byte.
        EngineMap([f"R{i}" for i in range(257)])
        with pytest.raises(DataError, match="two bytes"):
            EngineMap([f"R{i}" for i in range(MAX_ENGINES + 1)])

    def test_roundtrip_past_one_byte(self):
        """Regression: engine numbers above 255 survive the wire.

        The engine number spreads over (engine_type << 8) | engine_id,
        so a fleet of >255 exporters round-trips; router 0 still encodes
        with engine_type 0 (byte-compatible with classic exporters).
        """
        engines = EngineMap([f"R{i}" for i in range(300)])
        for router in ("R0", "R255", "R256", "R299"):
            packet = encode_packet([record(0, router=router)], engines)
            decoded = decode_packet(packet, engines)
            assert decoded[0].router == router
        # engine_type (header byte 20) is the high byte of the number.
        packet = encode_packet([record(0, router="R299")], engines)
        assert packet[20] == 299 >> 8
        assert packet[21] == 299 & 0xFF


class TestSinglePacket:
    def test_roundtrip_preserves_fields(self, engines):
        original = [record(i) for i in range(5)]
        decoded = decode_packet(encode_packet(original, engines), engines)
        assert decoded == original

    def test_packet_sizes(self, engines):
        packet = encode_packet([record(0), record(1)], engines)
        assert len(packet) == 24 + 2 * 48

    def test_sampling_interval_survives(self, engines):
        original = [record(0, sampling=100)]
        decoded = decode_packet(encode_packet(original, engines), engines)
        assert decoded[0].sampling_interval == 100
        assert decoded[0].estimated_octets == original[0].estimated_octets

    def test_router_identity_via_engine_id(self, engines):
        decoded = decode_packet(
            encode_packet([record(0, router="R3")], engines), engines
        )
        assert decoded[0].router == "R3"

    def test_empty_packet_rejected(self, engines):
        with pytest.raises(DataError):
            encode_packet([], engines)

    def test_oversize_packet_rejected(self, engines):
        records = [record(i) for i in range(MAX_RECORDS_PER_PACKET + 1)]
        with pytest.raises(DataError, match="at most"):
            encode_packet(records, engines)

    def test_mixed_routers_rejected(self, engines):
        with pytest.raises(DataError, match="routers"):
            encode_packet([record(0, "R1"), record(1, "R2")], engines)

    def test_mixed_sampling_rejected(self, engines):
        with pytest.raises(DataError, match="sampling"):
            encode_packet([record(0, sampling=1), record(1, sampling=10)], engines)

    def test_counter_width_enforced(self, engines):
        with pytest.raises(DataError, match="32-bit"):
            encode_packet([record(0, octets=1 << 32)], engines)

    def test_sampling_width_enforced(self, engines):
        with pytest.raises(DataError, match="14-bit"):
            encode_packet([record(0, sampling=1 << 14)], engines)


class TestDecodeValidation:
    def test_truncated_header(self, engines):
        with pytest.raises(DataError, match="short"):
            decode_packet(b"\x00\x05", engines)

    def test_wrong_version(self, engines):
        packet = bytearray(encode_packet([record(0)], engines))
        packet[1] = 9  # version low byte
        with pytest.raises(DataError, match="version"):
            decode_packet(bytes(packet), engines)

    def test_length_mismatch(self, engines):
        packet = encode_packet([record(0)], engines)
        with pytest.raises(DataError, match="length"):
            decode_packet(packet + b"\x00", engines)


class TestStream:
    def test_splits_into_max_size_packets(self, engines):
        records = [record(i) for i in range(75)]
        packets = encode_packets(records, engines)
        assert len(packets) == 3  # 30 + 30 + 15
        assert sorted(
            r.key.src_port for r in decode_packets(packets, engines)
        ) == sorted(r.key.src_port for r in records)

    def test_groups_by_router(self, engines):
        records = [record(0, "R1"), record(1, "R2"), record(2, "R1")]
        packets = encode_packets(records, engines)
        assert len(packets) == 2
        decoded = decode_packets(packets, engines)
        assert {r.router for r in decoded} == {"R1", "R2"}

    def test_full_trace_roundtrips_through_the_wire(self):
        """Generate a trace, serialize it, decode it, and verify the
        collector computes identical per-flow volumes from both."""
        trace = generate_network_trace("internet2", n_flows=25, seed=9)
        engines = EngineMap(trace.topology.pop_codes)
        packets = encode_packets(trace.records, engines)
        decoded = decode_packets(packets, engines)

        direct = FlowCollector()
        direct.ingest_many(trace.records)
        via_wire = FlowCollector()
        via_wire.ingest_many(decoded)
        assert direct.deduplicated_octets() == via_wire.deduplicated_octets()
