"""Tests for tier-preserving prefix aggregation."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.prefix_aggregation import (
    aggregate_tier_prefixes,
    compression_ratio,
)
from repro.errors import AccountingError


def lpm_tier(prefixes, address):
    """Reference longest-prefix match over an aggregated table."""
    addr = ipaddress.IPv4Address(address)
    best = None
    for network, tier in prefixes.items():
        if addr in network:
            if best is None or network.prefixlen > best[0].prefixlen:
                best = (network, tier)
    assert best is not None, f"no covering prefix for {address}"
    return best[1]


class TestBasicAggregation:
    def test_adjacent_pair_merges(self):
        prefixes = aggregate_tier_prefixes(
            {"10.0.0.0": 1, "10.0.0.1": 1}
        )
        assert prefixes == {ipaddress.IPv4Network("10.0.0.0/31"): 1}

    def test_different_tiers_stay_apart(self):
        prefixes = aggregate_tier_prefixes(
            {"10.0.0.0": 1, "10.0.0.1": 2}
        )
        assert prefixes == {
            ipaddress.IPv4Network("10.0.0.0/32"): 1,
            ipaddress.IPv4Network("10.0.0.1/32"): 2,
        }

    def test_sixteen_block_collapses(self):
        hosts = {f"10.0.0.{i}": 3 for i in range(16)}
        prefixes = aggregate_tier_prefixes(hosts)
        assert prefixes == {ipaddress.IPv4Network("10.0.0.0/28"): 3}

    def test_strict_does_not_cover_distant_space(self):
        # Two same-tier hosts far apart: strict mode emits the trie hull
        # (their lowest common subtree), never 0.0.0.0/0-style routes
        # unless both halves of the tree are occupied.
        prefixes = aggregate_tier_prefixes(
            {"10.0.0.1": 1, "10.0.0.200": 1}, strict=True
        )
        assert ipaddress.IPv4Network("0.0.0.0/0") not in prefixes
        covering = max(network.prefixlen for network in prefixes)
        assert covering >= 24

    def test_loose_mode_collapses_uniform_designs(self):
        prefixes = aggregate_tier_prefixes(
            {"10.0.0.1": 2, "192.168.3.4": 2}, strict=False
        )
        assert prefixes == {ipaddress.IPv4Network("0.0.0.0/0"): 2}

    def test_conflicting_assignment_rejected(self):
        # Mapping keys are unique, so simulate the conflict via two
        # spellings of the same address is impossible; instead check the
        # guard on equal ints with distinct tiers via direct dict.
        with pytest.raises(AccountingError):
            aggregate_tier_prefixes({})

    def test_invalid_address_rejected(self):
        with pytest.raises(AccountingError):
            aggregate_tier_prefixes({"10.0.0.300": 1})


class TestCorrectnessProperty:
    @settings(deadline=None, max_examples=60)
    @given(
        data=st.dictionaries(
            st.integers(min_value=0, max_value=2**32 - 1),
            st.integers(min_value=1, max_value=4),
            min_size=1,
            max_size=60,
        ),
        strict=st.booleans(),
    )
    def test_lpm_reproduces_assignment(self, data, strict):
        hosts = {
            str(ipaddress.IPv4Address(addr)): tier for addr, tier in data.items()
        }
        prefixes = aggregate_tier_prefixes(hosts, strict=strict)
        for address, tier in hosts.items():
            assert lpm_tier(prefixes, address) == tier

    @settings(deadline=None, max_examples=30)
    @given(
        base=st.integers(min_value=0, max_value=2**32 - 300),
        n=st.integers(min_value=2, max_value=200),
    )
    def test_contiguous_same_tier_block_compresses(self, base, n):
        hosts = {
            str(ipaddress.IPv4Address(base + i)): 1 for i in range(n)
        }
        prefixes = aggregate_tier_prefixes(hosts)
        # A contiguous run of n hosts needs at most ~2*log2(n)+2 prefixes.
        import math

        assert len(prefixes) <= 2 * (int(math.log2(n)) + 2)


class TestCompressionRatio:
    def test_ratio(self):
        hosts = {f"10.0.0.{i}": 1 for i in range(8)}
        prefixes = aggregate_tier_prefixes(hosts)
        assert compression_ratio(hosts, prefixes) == pytest.approx(8.0)

    def test_empty_rejected(self):
        with pytest.raises(AccountingError):
            compression_ratio({"10.0.0.1": 1}, {})


class TestTierDesignIntegration:
    def test_aggregated_rib_resolves_identically(self):
        from repro.accounting.tier_designer import TierDesign
        from repro.core.bundling import ProfitWeightedBundling
        from repro.core.ced import CEDDemand
        from repro.core.cost import LinearDistanceCost
        from repro.core.flow import FlowSet
        from repro.core.market import Market

        flows = FlowSet(
            demands_mbps=[100.0, 60.0, 30.0, 20.0, 10.0, 5.0, 2.0, 1.0],
            distances_miles=[1.0, 5.0, 20.0, 80.0, 200.0, 600.0, 2000.0, 5000.0],
            dsts=[f"10.0.0.{i}" for i in range(8)],
        )
        market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        design = TierDesign.from_outcome(market, outcome)

        host_rib = design.routing_table(aggregate=False)
        agg_rib = design.routing_table(aggregate=True)
        assert len(agg_rib) <= len(host_rib)
        for dst, tier in design.tier_of_destination.items():
            assert host_rib.tier_for(dst, design.provider_asn) == tier
            assert agg_rib.tier_for(dst, design.provider_asn) == tier
