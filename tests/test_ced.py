"""Tests for constant-elasticity demand (paper §3.2.1)."""

import numpy as np
import pytest

from repro.core.ced import CEDDemand
from repro.errors import CalibrationError, ModelParameterError


@pytest.fixture
def model():
    return CEDDemand(alpha=2.0)


class TestConstruction:
    @pytest.mark.parametrize("alpha", [1.0, 0.5, 0.0, -1.0, float("nan")])
    def test_alpha_must_exceed_one(self, alpha):
        with pytest.raises(ModelParameterError, match="alpha"):
            CEDDemand(alpha)

    def test_describe_mentions_alpha(self):
        assert "1.7" in CEDDemand(1.7).describe()

    def test_repr(self):
        assert repr(CEDDemand(2.0)) == "CEDDemand(alpha=2.0)"

    def test_population_is_unity(self, model):
        assert model.population(np.array([1.0, 2.0])) == 1.0


class TestQuantities:
    def test_eq2_shape(self, model):
        v = np.array([1.0, 2.0])
        p = np.array([1.0, 1.0])
        q = model.quantities(v, p)
        assert q == pytest.approx([1.0, 4.0])

    def test_demand_decreases_with_price(self, model):
        v = np.array([1.5])
        q_low = model.quantities(v, np.array([1.0]))
        q_high = model.quantities(v, np.array([2.0]))
        assert q_high[0] < q_low[0]

    def test_unit_elasticity_scaling(self):
        # Doubling price scales demand by 2^-alpha.
        model = CEDDemand(alpha=3.0)
        v = np.array([1.0])
        ratio = model.quantities(v, np.array([2.0]))[0] / model.quantities(
            v, np.array([1.0])
        )[0]
        assert ratio == pytest.approx(2.0**-3)

    def test_nonpositive_price_rejected(self, model):
        with pytest.raises(ModelParameterError):
            model.quantities(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ModelParameterError):
            model.quantities(np.array([1.0, 2.0]), np.array([1.0]))


class TestPricing:
    def test_eq4_markup(self, model):
        # alpha=2 -> p* = 2c.
        c = np.array([1.0, 0.5, 3.0])
        p = model.optimal_prices(np.array([1.0, 1.0, 1.0]), c)
        assert p == pytest.approx(2.0 * c)

    def test_markup_grows_as_alpha_approaches_one(self):
        c = np.array([1.0])
        v = np.array([1.0])
        p_inelastic = CEDDemand(1.05).optimal_prices(v, c)[0]
        p_elastic = CEDDemand(5.0).optimal_prices(v, c)[0]
        assert p_inelastic > p_elastic > 1.0

    def test_nonpositive_cost_rejected(self, model):
        with pytest.raises(ModelParameterError):
            model.optimal_prices(np.array([1.0]), np.array([0.0]))

    def test_uniform_price_single_flow_matches_eq4(self, model):
        v = np.array([1.3])
        c = np.array([0.7])
        assert model.uniform_price(v, c) == pytest.approx(
            model.optimal_prices(v, c)[0]
        )

    def test_uniform_price_is_weighted_markup(self, model):
        # Eq 5: the blended optimum is the markup applied to a
        # v^alpha-weighted average cost.
        v = np.array([1.0, 2.0])
        c = np.array([1.0, 0.5])
        expected = 2.0 * (1.0 * 1.0 + 0.5 * 4.0) / (1.0 + 4.0)
        assert model.uniform_price(v, c) == pytest.approx(expected)
        assert model.uniform_price(v, c) == pytest.approx(1.2)

    def test_uniform_price_between_extreme_flow_optima(self, model):
        v = np.array([1.0, 1.0, 1.0])
        c = np.array([0.5, 1.0, 2.0])
        uniform = model.uniform_price(v, c)
        per_flow = model.optimal_prices(v, c)
        assert per_flow.min() < uniform < per_flow.max()

    def test_uniform_price_first_order_condition(self, model):
        # No single price earns more than the Eq 5 price.
        v = np.array([1.0, 2.0, 0.5])
        c = np.array([1.0, 0.4, 2.0])
        p_star = model.uniform_price(v, c)
        best = model.profit(v, c, np.full(3, p_star))
        for p in np.linspace(0.5, 5.0, 200):
            assert model.profit(v, c, np.full(3, p)) <= best + 1e-12


class TestProfitAndSurplus:
    def test_profit_at_blended_rate_matches_direct_sum(self, model):
        v = np.array([1.0, 2.0])
        c = np.array([1.0, 0.5])
        p = np.array([1.2, 1.2])
        q = model.quantities(v, p)
        assert model.profit(v, c, p) == pytest.approx(float(np.sum(q * (p - c))))

    def test_figure1_profit_numbers(self, model):
        v = np.array([1.0, 2.0])
        c = np.array([1.0, 0.5])
        blended = model.profit(v, c, np.array([1.2, 1.2]))
        tiered = model.profit(v, c, model.optimal_prices(v, c))
        assert blended == pytest.approx(25.0 / 12.0)  # $2.08
        assert tiered == pytest.approx(2.25)

    def test_figure1_surplus_numbers(self, model):
        v = np.array([1.0, 2.0])
        blended = model.consumer_surplus(v, np.array([1.2, 1.2]))
        tiered = model.consumer_surplus(v, np.array([2.0, 1.0]))
        assert blended == pytest.approx(25.0 / 6.0)  # $4.17
        assert tiered == pytest.approx(4.5)

    def test_surplus_formula_alpha2(self, model):
        # CS = p*q/(alpha-1) = p*q at alpha=2.
        v = np.array([1.0])
        p = np.array([0.8])
        q = model.quantities(v, p)[0]
        assert model.consumer_surplus(v, p) == pytest.approx(0.8 * q)

    def test_surplus_matches_numeric_integral(self):
        model = CEDDemand(alpha=1.5)
        v = np.array([2.0])
        price = 1.3
        # integral of q(p) dp from price to infinity equals CS for CED;
        # a log-spaced grid tames the slowly decaying p^(-1/2) tail.
        grid = np.logspace(np.log10(price), 9, 400_000)
        q = model.quantities(np.full(grid.size, 2.0), grid)
        numeric = np.trapezoid(q, grid)
        assert model.consumer_surplus(v, np.array([price])) == pytest.approx(
            numeric, rel=1e-3
        )

    def test_surplus_decreases_with_price(self, model):
        v = np.array([1.0, 1.0])
        low = model.consumer_surplus(v, np.array([1.0, 1.0]))
        high = model.consumer_surplus(v, np.array([2.0, 2.0]))
        assert high < low


class TestCalibration:
    def test_valuation_fit_inverts_demand(self, model):
        q = np.array([4.0, 9.0, 0.25])
        p0 = 2.0
        v = model.fit_valuations(q, p0)
        assert model.quantities(v, np.full(3, p0)) == pytest.approx(q)

    def test_valuation_fit_formula(self):
        # v = P0 * q^(1/alpha)  (the corrected §4.1.2 formula).
        model = CEDDemand(alpha=2.0)
        v = model.fit_valuations(np.array([9.0]), 3.0)
        assert v[0] == pytest.approx(3.0 * 3.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_valuation_fit_rejects_bad_rate(self, model, bad):
        with pytest.raises((ModelParameterError, CalibrationError)):
            model.fit_valuations(np.array([1.0]), bad)

    def test_valuation_fit_rejects_bad_demand(self, model):
        with pytest.raises(CalibrationError):
            model.fit_valuations(np.array([1.0, 0.0]), 2.0)

    def test_gamma_makes_blended_rate_optimal(self, model):
        q = np.array([10.0, 3.0, 100.0, 0.5])
        f = np.array([1.0, 5.0, 2.0, 11.0])
        p0 = 20.0
        v = model.fit_valuations(q, p0)
        gamma = model.fit_gamma(v, f, p0)
        assert model.uniform_price(v, gamma * f) == pytest.approx(p0)

    def test_gamma_positive(self, model):
        v = model.fit_valuations(np.array([5.0, 1.0]), 10.0)
        gamma = model.fit_gamma(v, np.array([2.0, 8.0]), 10.0)
        assert gamma > 0

    def test_gamma_rejects_nonpositive_costs(self, model):
        v = model.fit_valuations(np.array([5.0, 1.0]), 10.0)
        with pytest.raises(CalibrationError):
            model.fit_gamma(v, np.array([2.0, 0.0]), 10.0)

    def test_gamma_scales_inversely_with_relative_costs(self, model):
        # Doubling all relative costs halves gamma (dollar costs unchanged).
        q = np.array([3.0, 7.0])
        f = np.array([1.0, 4.0])
        v = model.fit_valuations(q, 10.0)
        g1 = model.fit_gamma(v, f, 10.0)
        g2 = model.fit_gamma(v, 2.0 * f, 10.0)
        assert g2 == pytest.approx(g1 / 2.0)

    def test_large_alpha_fit_is_stable(self):
        # v**alpha overflows naively at alpha=10; the implementation
        # normalizes internally.
        model = CEDDemand(alpha=10.0)
        q = np.array([1e4, 1e2, 1.0])
        v = model.fit_valuations(q, 30.0)
        gamma = model.fit_gamma(v, np.array([1.0, 10.0, 100.0]), 30.0)
        assert np.isfinite(gamma) and gamma > 0
        assert model.uniform_price(v, gamma * np.array([1.0, 10.0, 100.0])) == (
            pytest.approx(30.0)
        )


class TestPotentialProfit:
    def test_eq12_matches_profit_at_optimum(self, model):
        v = np.array([1.0, 2.0, 0.7])
        c = np.array([1.0, 0.5, 2.0])
        pi = model.potential_profits(v, c)
        for i in range(3):
            vi = v[i : i + 1]
            ci = c[i : i + 1]
            direct = model.profit(vi, ci, model.optimal_prices(vi, ci))
            assert pi[i] == pytest.approx(direct)

    def test_eq12_closed_form(self, model):
        # pi = v^a/a * (a c/(a-1))^(1-a); alpha=2, v=1, c=1 -> 0.25.
        pi = model.potential_profits(np.array([1.0]), np.array([1.0]))
        assert pi[0] == pytest.approx(0.25)

    def test_potential_profit_increases_with_valuation(self, model):
        pi = model.potential_profits(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert pi[1] > pi[0]

    def test_potential_profit_decreases_with_cost(self, model):
        pi = model.potential_profits(np.array([1.0, 1.0]), np.array([1.0, 2.0]))
        assert pi[1] < pi[0]


class TestBundleObjective:
    def test_slice_scores_match_direct_bundle_profit(self, model):
        v = np.array([1.0, 1.5, 2.0, 0.5])
        c = np.array([0.5, 0.8, 1.1, 2.0])
        objective = model.bundle_objective(v, c)
        for i in range(4):
            for j in range(i + 1, 5):
                members = np.arange(i, j)
                price = model.uniform_price(v[members], c[members])
                direct = model.profit(
                    v[members], c[members], np.full(members.size, price)
                )
                assert objective.slice_score(i, j) == pytest.approx(direct)

    def test_empty_slice_scores_zero(self, model):
        objective = model.bundle_objective(np.array([1.0]), np.array([1.0]))
        assert objective.slice_score(0, 0) == 0.0
