"""Tests for the topology substrate (PoPs, links, routing, builders)."""

import pytest

from repro.errors import TopologyError
from repro.geo.coords import EUROPEAN_CITIES, GeoPoint, City
from repro.topology.builders import (
    build_cdn_topology,
    build_eu_isp_topology,
    build_internet2_topology,
)
from repro.topology.ixp import IXP
from repro.topology.network import Topology
from repro.topology.pop import Link, PoP


def city(name):
    return next(c for c in EUROPEAN_CITIES if c.name == name)


@pytest.fixture
def triangle():
    """AMS - BRU - PAR chain plus direct AMS - PAR link."""
    topo = Topology("triangle")
    topo.add_pop("AMS", city("Amsterdam"))
    topo.add_pop("BRU", city("Brussels"))
    topo.add_pop("PAR", city("Paris"))
    topo.add_link("AMS", "BRU")
    topo.add_link("BRU", "PAR")
    topo.add_link("AMS", "PAR")
    return topo


class TestPoPAndLink:
    def test_pop_distance(self):
        a = PoP(code="AMS", city=city("Amsterdam"))
        b = PoP(code="PAR", city=city("Paris"))
        assert 250 < a.distance_to(b) < 290

    def test_empty_code_rejected(self):
        with pytest.raises(TopologyError):
            PoP(code="", city=city("Paris"))

    def test_link_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link(a="AMS", b="AMS", length_miles=1.0)

    def test_link_negative_length_rejected(self):
        with pytest.raises(TopologyError):
            Link(a="AMS", b="PAR", length_miles=-5.0)

    def test_link_capacity_validated(self):
        with pytest.raises(TopologyError):
            Link(a="A", b="B", length_miles=1.0, capacity_gbps=0.0)

    def test_link_key_is_unordered(self):
        assert Link(a="B", b="A", length_miles=1.0).key == ("A", "B")


class TestTopology:
    def test_requires_name(self):
        with pytest.raises(TopologyError):
            Topology("")

    def test_duplicate_pop_rejected(self, triangle):
        with pytest.raises(TopologyError, match="duplicate"):
            triangle.add_pop("AMS", city("Amsterdam"))

    def test_unknown_pop_lookup(self, triangle):
        with pytest.raises(TopologyError, match="unknown"):
            triangle.pop("NYC")

    def test_link_defaults_to_geographic_length(self, triangle):
        links = {link.key: link for link in triangle.links}
        direct = links[("AMS", "PAR")]
        assert direct.length_miles == pytest.approx(
            triangle.geographic_distance("AMS", "PAR")
        )

    def test_contains_and_len(self, triangle):
        assert "AMS" in triangle
        assert "NYC" not in triangle
        assert len(triangle) == 3

    def test_shortest_path_prefers_direct_link(self, triangle):
        assert triangle.shortest_path("AMS", "PAR") == ["AMS", "PAR"]

    def test_routed_equals_geographic_on_direct_link(self, triangle):
        assert triangle.routed_distance("AMS", "PAR") == pytest.approx(
            triangle.geographic_distance("AMS", "PAR")
        )

    def test_routed_distance_via_detour(self):
        topo = Topology("chain")
        topo.add_pop("AMS", city("Amsterdam"))
        topo.add_pop("BRU", city("Brussels"))
        topo.add_pop("PAR", city("Paris"))
        topo.add_link("AMS", "BRU")
        topo.add_link("BRU", "PAR")
        routed = topo.routed_distance("AMS", "PAR")
        direct = topo.geographic_distance("AMS", "PAR")
        assert routed > direct  # the chain detours through Brussels

    def test_no_route_raises(self):
        topo = Topology("split")
        topo.add_pop("AMS", city("Amsterdam"))
        topo.add_pop("PAR", city("Paris"))
        with pytest.raises(TopologyError, match="no route"):
            topo.routed_distance("AMS", "PAR")
        assert not topo.is_connected()

    def test_path_links(self, triangle):
        links = triangle.path_links(["AMS", "BRU", "PAR"])
        assert [link.key for link in links] == [("AMS", "BRU"), ("BRU", "PAR")]

    def test_path_links_rejects_non_adjacent(self, triangle):
        topo = Topology("chain2")
        topo.add_pop("AMS", city("Amsterdam"))
        topo.add_pop("PAR", city("Paris"))
        with pytest.raises(TopologyError):
            topo.path_links(["AMS", "PAR"])

    def test_diameter(self, triangle):
        assert triangle.diameter_miles() >= triangle.geographic_distance(
            "AMS", "PAR"
        )

    def test_repr(self, triangle):
        assert "triangle" in repr(triangle)


class TestBuilders:
    @pytest.mark.parametrize(
        "builder", [build_eu_isp_topology, build_internet2_topology, build_cdn_topology]
    )
    def test_all_reference_topologies_connected(self, builder):
        topo = builder()
        assert topo.is_connected()
        assert len(topo) >= 10

    def test_internet2_is_abilene(self):
        topo = build_internet2_topology()
        assert len(topo) == 12
        assert topo.routed_distance("SEA", "NYC") > 2000

    def test_eu_isp_scale_is_regional(self):
        topo = build_eu_isp_topology()
        # Benelux core distances are tens of miles.
        assert topo.geographic_distance("AMS", "UTR") < 40

    def test_cdn_spans_continents(self):
        topo = build_cdn_topology()
        assert topo.diameter_miles() > 8000

    def test_eu_isp_paths_follow_backbone(self):
        topo = build_eu_isp_topology()
        path = topo.shortest_path("STO", "MAD")
        assert path[0] == "STO" and path[-1] == "MAD"
        assert len(path) >= 3


class TestIXP:
    def test_members(self):
        ixp = IXP(name="AMS-IX", city=city("Amsterdam"), members=("AS1",))
        assert ixp.has_member("AS1")
        assert not ixp.has_member("AS2")

    def test_with_member_is_idempotent(self):
        ixp = IXP(name="AMS-IX", city=city("Amsterdam"))
        grown = ixp.with_member("AS9").with_member("AS9")
        assert grown.members == ("AS9",)

    def test_requires_name(self):
        with pytest.raises(TopologyError):
            IXP(name="", city=city("Amsterdam"))

    def test_distance_to_city(self):
        ixp = IXP(name="AMS-IX", city=city("Amsterdam"))
        assert ixp.distance_to_city(city("Paris")) > 200


def test_custom_city_pop():
    custom = City(name="Reykjavik", country="IS", location=GeoPoint(64.15, -21.94))
    topo = Topology("north")
    topo.add_pop("REK", custom)
    assert topo.pop("REK").city.country == "IS"
