"""Tests for tier-aware exit selection (§5.1)."""

import pytest

from repro.errors import TopologyError
from repro.geo.coords import US_RESEARCH_CITIES
from repro.topology.builders import build_internet2_topology
from repro.topology.network import Topology
from repro.topology.routing import ExitSelector, FlowSpec


def city(name):
    return next(c for c in US_RESEARCH_CITIES if c.name == name)


@pytest.fixture
def backbone():
    """Customer backbone: NYC - CHI - DEN chain (like the Fig. 2 CDN)."""
    topo = Topology("customer")
    topo.add_pop("NYC", city("New York"))
    topo.add_pop("CHI", city("Chicago"))
    topo.add_pop("DEN", city("Denver"))
    topo.add_link("NYC", "CHI")
    topo.add_link("CHI", "DEN")
    return topo


def flat_prices(exit_pop, destination):
    """Destination-independent tier prices favouring the western exit."""
    return {"NYC": 10.0, "CHI": 6.0, "DEN": 3.0}[exit_pop]


class TestConstruction:
    def test_unknown_handoff_rejected(self, backbone):
        with pytest.raises(TopologyError):
            ExitSelector(backbone, ["LAX"], flat_prices, 0.001)

    def test_needs_handoffs(self, backbone):
        with pytest.raises(TopologyError):
            ExitSelector(backbone, [], flat_prices, 0.001)

    def test_negative_backbone_cost_rejected(self, backbone):
        with pytest.raises(TopologyError):
            ExitSelector(backbone, ["NYC"], flat_prices, -1.0)

    def test_flow_validation(self):
        with pytest.raises(TopologyError):
            FlowSpec(source_pop="NYC", destination="d", demand_mbps=0.0)


class TestPolicies:
    def test_hot_potato_picks_nearest_exit(self, backbone):
        selector = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.001
        )
        flow = FlowSpec(source_pop="NYC", destination="west", demand_mbps=10.0)
        assert selector.hot_potato_exit(flow) == "NYC"

    def test_tier_aware_carries_past_expensive_exits(self, backbone):
        # Cheap backbone: worth hauling NYC -> DEN to reach the $3 tier.
        selector = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.0005
        )
        flow = FlowSpec(source_pop="NYC", destination="west", demand_mbps=10.0)
        assert selector.tier_aware_exit(flow) == "DEN"

    def test_expensive_backbone_reverts_to_hot_potato(self, backbone):
        # At $1/mile/Mbps nobody hauls 1,600 miles to save $7/Mbps.
        selector = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 1.0
        )
        flow = FlowSpec(source_pop="NYC", destination="west", demand_mbps=10.0)
        assert selector.tier_aware_exit(flow) == "NYC"

    def test_intermediate_backbone_cost_picks_middle_exit(self, backbone):
        # NYC->CHI ~710 mi saves $4/Mbps; CHI->DEN ~920 mi saves $3 more.
        # At $0.004/mile/Mbps the first hop pays, the second does not.
        selector = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.004
        )
        flow = FlowSpec(source_pop="NYC", destination="west", demand_mbps=10.0)
        assert selector.tier_aware_exit(flow) == "CHI"

    def test_unknown_policy_rejected(self, backbone):
        selector = ExitSelector(backbone, ["NYC"], flat_prices, 0.001)
        with pytest.raises(TopologyError, match="policy"):
            selector.route_all([], policy="cold-fusion")


class TestAggregateOutcome:
    def make_flows(self):
        return [
            FlowSpec("NYC", "d1", 100.0),
            FlowSpec("CHI", "d2", 50.0),
            FlowSpec("DEN", "d3", 25.0),
        ]

    def test_tier_aware_never_costs_more(self, backbone):
        for rate in (0.0001, 0.001, 0.01, 0.1, 1.0):
            selector = ExitSelector(
                backbone, ["NYC", "CHI", "DEN"], flat_prices, rate
            )
            report = selector.savings(self.make_flows())
            assert report["tier_aware_cost"] <= report["hot_potato_cost"] + 1e-9
            assert report["savings"] >= -1e-9

    def test_savings_shrink_with_backbone_cost(self, backbone):
        cheap = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.0001
        ).savings(self.make_flows())
        pricey = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.05
        ).savings(self.make_flows())
        assert cheap["savings"] >= pricey["savings"]

    def test_transit_bill_and_backbone_accounting(self, backbone):
        selector = ExitSelector(
            backbone, ["NYC", "CHI", "DEN"], flat_prices, 0.0005
        )
        outcome = selector.route_all(self.make_flows(), "tier-aware")
        # All flows exit at DEN under near-free backbone.
        assert {d.exit_pop for d in outcome.decisions} == {"DEN"}
        assert outcome.transit_bill == pytest.approx(3.0 * 175.0)
        assert outcome.backbone_mile_mbps > 0

    def test_works_on_reference_topology(self):
        topo = build_internet2_topology()
        selector = ExitSelector(
            topo,
            ["NYC", "CHI", "HOU"],
            lambda exit_pop, dst: {"NYC": 9.0, "CHI": 6.0, "HOU": 4.0}[exit_pop],
            0.002,
        )
        flows = [FlowSpec("SEA", "dst", 10.0), FlowSpec("WDC", "dst", 10.0)]
        report = selector.savings(flows)
        assert report["savings"] >= 0.0
        assert 0.0 <= report["savings_fraction"] < 1.0
