"""Integration: diurnal time series driven through SNMP tier billing.

Connects :mod:`repro.synth.workloads` to :mod:`repro.accounting`: a
designed 3-tier market's traffic is expanded into a day of 5-minute
intervals, pumped through the per-tier links with SNMP polls at every
interval, and billed at the 95th percentile — the complete monthly
billing cycle a transit customer actually experiences.
"""

import numpy as np
import pytest

from repro.accounting.billing import percentile_mbps
from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.synth.workloads import expand_to_time_series


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(31)
    n = 24
    flows = FlowSet(
        demands_mbps=rng.lognormal(4.0, 1.0, n),
        distances_miles=rng.lognormal(3.5, 0.9, n),
        dsts=[f"10.9.0.{i + 1}" for i in range(n)],
    )
    market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
    outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
    design = TierDesign.from_outcome(market, outcome)
    series = expand_to_time_series(
        flows,
        n_intervals=288,
        interval_seconds=300.0,
        peak_to_trough=3.0,
        noise_cv=0.05,
        seed=31,
    )
    return flows, design, series


def bill_through_links(flows, design, series):
    acct = design.link_accounting()
    acct.poll(0.0)
    for interval in range(series.n_intervals):
        for j, dst in enumerate(flows.dsts):
            octets = series.octets(interval, j)
            if octets:
                acct.send(dst, octets)
        acct.poll((interval + 1) * series.interval_seconds)
    return acct


class TestDiurnalBillingCycle:
    def test_invoice_bills_the_percentile_not_the_mean(self, setup):
        flows, design, series = setup
        acct = bill_through_links(flows, design, series)
        invoice = acct.invoice("AS65001", design.rates, percentile=95.0)
        mean_invoice = acct.invoice("AS65001", design.rates, percentile=50.0)
        assert invoice.total > mean_invoice.total

    def test_tier_usage_matches_series_aggregation(self, setup):
        flows, design, series = setup
        acct = bill_through_links(flows, design, series)
        usage = acct.usage_samples_mbps()
        # Reference: recompute each tier's per-interval Mbps from the
        # series directly and compare the billable percentile.
        for tier, rate in design.rates.items():
            del rate
            members = [
                j
                for j, dst in enumerate(flows.dsts)
                if design.tier_for(dst) == tier
            ]
            if not members:
                continue
            reference = []
            for interval in range(series.n_intervals):
                octets = sum(series.octets(interval, j) for j in members)
                reference.append(octets * 8.0 / series.interval_seconds / 1e6)
            assert percentile_mbps(usage[tier], 95.0) == pytest.approx(
                percentile_mbps(reference, 95.0), rel=1e-9
            )

    def test_monthly_total_scales_with_rates(self, setup):
        flows, design, series = setup
        acct = bill_through_links(flows, design, series)
        invoice = acct.invoice("AS65001", design.rates)
        doubled = acct.invoice(
            "AS65001", {tier: 2 * rate for tier, rate in design.rates.items()}
        )
        assert doubled.total == pytest.approx(2 * invoice.total)

    def test_billable_exceeds_matrix_mean_on_bursty_traffic(self, setup):
        flows, design, series = setup
        acct = bill_through_links(flows, design, series)
        invoice = acct.invoice("AS65001", design.rates, percentile=95.0)
        billable = sum(item.billable_mbps for item in invoice.line_items)
        assert billable > 1.1 * float(flows.demands.sum())
