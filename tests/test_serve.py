"""Tests for the online quote-serving subsystem: snapshots, the hot-swap
registry, the vectorized engine, the thread-pool server, and the
stream→registry round trip."""

import threading
import time

import numpy as np
import pytest

from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import (
    ConfigurationError,
    DataError,
    QuoteTimeoutError,
    SnapshotUnavailableError,
)
from repro.serve import (
    PricingSnapshot,
    Quote,
    QuoteEngine,
    QuoteRequest,
    QuoteServer,
    ServeConfig,
    SnapshotRegistry,
    UNKNOWN_TIER,
    generate_requests,
    run_load,
)
from repro.serve.server import PendingQuote
from repro.stream import (
    DemandShift,
    StreamConfig,
    StreamingPipeline,
    TraceReplaySource,
)
from repro.synth.trace import generate_network_trace

P0 = 20.0
COST_MODEL = LinearDistanceCost(theta=0.2)


def make_market(scale=1.0):
    flows = FlowSet(
        demands_mbps=[800.0 * scale, 300.0, 120.0, 60.0 * scale, 20.0, 5.0],
        distances_miles=[2.0, 15.0, 60.0, 250.0, 900.0, 4000.0],
        dsts=[f"10.0.{i}.1" for i in range(6)],
    )
    return Market(flows, CEDDemand(1.1), COST_MODEL, P0)


def make_design(scale=1.0, n_tiers=3):
    market = make_market(scale)
    outcome = market.tiered_outcome(ProfitWeightedBundling(), n_tiers)
    return market, TierDesign.from_outcome(market, outcome)


def publish(registry, scale=1.0):
    market, design = make_design(scale)
    return registry.publish(
        design,
        config_digest="regime-a",
        blended_rate=P0,
        gamma=market.gamma,
        reference_distance_miles=float(market.flows.distances.max()),
    )


@pytest.fixture
def registry():
    return SnapshotRegistry()


@pytest.fixture
def engine(registry):
    return QuoteEngine(registry, COST_MODEL, fallback_blended_rate=P0)


# ----------------------------------------------------------------------
# PricingSnapshot
# ----------------------------------------------------------------------


class TestPricingSnapshot:
    def test_lookup_matches_design(self, registry):
        market, design = make_design()
        snapshot = registry.publish(
            design, config_digest="r", blended_rate=P0, gamma=market.gamma
        )
        for dst, tier in design.tier_of_destination.items():
            assert snapshot.tier_for(dst) == tier
        assert snapshot.tier_for("203.0.113.9") == UNKNOWN_TIER

    def test_vectorized_lookup_matches_scalar(self, registry):
        snapshot = publish(registry)
        dsts = ["10.0.0.1", "nope", "10.0.5.1", "10.0.3.1", "zzz"]
        tiers = snapshot.tiers_for(dsts)
        assert list(tiers) == [snapshot.tier_for(d) for d in dsts]
        prices = snapshot.prices_for_tiers(tiers)
        for tier, price in zip(tiers, prices):
            expected = P0 if tier == UNKNOWN_TIER else snapshot.rates[tier]
            assert price == pytest.approx(expected)

    def test_digest_depends_on_content(self):
        market, design = make_design()
        kwargs = dict(config_digest="r", blended_rate=P0, gamma=market.gamma)
        a = PricingSnapshot.build(design, version=1, **kwargs)
        b = PricingSnapshot.build(design, version=2, **kwargs)
        assert a.digest == b.digest  # same content, version-independent
        c = PricingSnapshot.build(
            design, version=1, config_digest="r", blended_rate=P0, gamma=0.5
        )
        assert c.digest != a.digest

    def test_lookup_arrays_are_immutable(self, registry):
        snapshot = publish(registry)
        with pytest.raises(ValueError):
            snapshot._rate_by_tier[0] = 0.0

    def test_rejects_empty_designs(self):
        with pytest.raises(DataError):
            PricingSnapshot.build(
                TierDesign(provider_asn=1, rates={}, tier_of_destination={}),
                version=1,
                config_digest="r",
                blended_rate=P0,
                gamma=1.0,
            )


# ----------------------------------------------------------------------
# SnapshotRegistry
# ----------------------------------------------------------------------


class TestSnapshotRegistry:
    def test_empty_registry(self, registry):
        assert registry.current() is None
        assert registry.version == 0
        with pytest.raises(SnapshotUnavailableError):
            registry.require()

    def test_publish_swaps_and_versions(self, registry):
        first = publish(registry)
        second = publish(registry, scale=3.0)
        assert registry.current() is second
        assert (first.version, second.version) == (1, 2)
        assert registry.swaps == 2

    def test_clear_then_republish_recovers(self, registry):
        publish(registry)
        registry.clear()
        assert registry.current() is None
        assert registry.clears == 1
        again = publish(registry)
        assert registry.require() is again
        assert again.version == 2  # versions keep counting across clears

    def test_subscriber_builds_snapshot_from_publication(self, registry):
        from repro.stream.repricer import DesignPublication

        market, design = make_design()
        callback = registry.subscriber("stream-digest")
        callback(
            DesignPublication(
                design=design,
                gamma=market.gamma,
                blended_rate=P0,
                window_end_ms=1234,
                sequence=1,
            )
        )
        snapshot = registry.require()
        assert snapshot.config_digest == "stream-digest"
        assert snapshot.published_at_ms == 1234
        assert snapshot.rates == {
            t: pytest.approx(r) for t, r in design.rates.items()
        }


# ----------------------------------------------------------------------
# QuoteEngine
# ----------------------------------------------------------------------


class TestQuoteEngine:
    def test_known_destination_quotes_tier_rate(self, registry, engine):
        snapshot = publish(registry)
        quote = engine.quote(
            QuoteRequest(dst="10.0.0.1", volume_mbps=5.0, distance_miles=2.0)
        )
        tier = snapshot.tier_for("10.0.0.1")
        assert not quote.degraded and quote.known
        assert quote.tier == tier
        assert quote.unit_price == pytest.approx(snapshot.rates[tier])
        assert quote.snapshot_digest == snapshot.digest

    def test_profit_contribution_is_margin_times_volume(self, registry, engine):
        snapshot = publish(registry)
        request = QuoteRequest(
            dst="10.0.0.1", volume_mbps=7.0, distance_miles=100.0
        )
        quote = engine.quote(request)
        costed = COST_MODEL.prepare_quotes(
            FlowSet(demands_mbps=[7.0], distances_miles=[100.0]),
            snapshot.reference_distance_miles,
        )
        unit_cost = snapshot.gamma * float(costed.relative_costs[0])
        assert quote.unit_cost == pytest.approx(unit_cost)
        assert quote.profit_contribution == pytest.approx(
            (quote.unit_price - unit_cost) * 7.0
        )

    def test_unknown_destination_falls_back_to_blended(self, registry, engine):
        publish(registry)
        quote = engine.quote(QuoteRequest(dst="203.0.113.1"))
        assert not quote.degraded  # the snapshot answered...
        assert not quote.known  # ...just not with a designed tier
        assert quote.tier is None
        assert quote.unit_price == pytest.approx(P0)

    def test_no_snapshot_degrades_to_blended(self, engine):
        quote = engine.quote(QuoteRequest(dst="10.0.0.1"))
        assert quote.degraded
        assert quote.tier is None
        assert quote.unit_price == pytest.approx(P0)
        assert quote.profit_contribution is None

    def test_strict_quote_raises_without_snapshot(self, engine):
        with pytest.raises(SnapshotUnavailableError):
            engine.quote(QuoteRequest(dst="10.0.0.1"), strict=True)

    def test_regime_mismatch_degrades_per_request(self, registry, engine):
        snapshot = publish(registry)
        quotes = engine.quote_batch(
            [
                QuoteRequest(dst="10.0.0.1", regime=snapshot.config_digest),
                QuoteRequest(dst="10.0.0.1", regime="some-other-regime"),
            ]
        )
        assert not quotes[0].degraded
        assert quotes[1].degraded
        assert quotes[1].unit_price == pytest.approx(P0)
        assert "regime mismatch" in quotes[1].reason

    def test_batch_matches_single_quotes(self, registry, engine):
        publish(registry)
        requests = generate_requests(
            64, seed=5, snapshot=registry.current(), unknown_fraction=0.3
        )
        batched = engine.quote_batch(requests)
        singles = [engine.quote(r) for r in requests]
        for got, expected in zip(batched, singles):
            assert got == expected

    def test_empty_batch(self, engine):
        assert engine.quote_batch([]) == []

    def test_request_validation(self):
        with pytest.raises(DataError):
            QuoteRequest(volume_mbps=0.0)
        with pytest.raises(DataError):
            QuoteRequest(distance_miles=-1.0)
        with pytest.raises(DataError):
            QuoteRequest(region="outer-space")

    def test_splitting_cost_model_rejected(self, registry):
        from repro.core.cost import DestinationTypeCost

        publish(registry)
        engine = QuoteEngine(
            registry, DestinationTypeCost(theta=0.5), fallback_blended_rate=P0
        )
        with pytest.raises(ConfigurationError):
            engine.quote_batch([QuoteRequest(dst="10.0.0.1")])


# ----------------------------------------------------------------------
# QuoteServer
# ----------------------------------------------------------------------


class _GatedEngine(QuoteEngine):
    """An engine whose batches block until the test opens the gate."""

    def __init__(self, registry):
        super().__init__(registry, COST_MODEL, fallback_blended_rate=P0)
        self.gate = threading.Event()

    def quote_batch(self, requests):
        self.gate.wait(5.0)
        return super().quote_batch(requests)


class TestQuoteServer:
    def test_round_trip(self, registry, engine):
        snapshot = publish(registry)
        with QuoteServer(engine, ServeConfig(workers=2, queue_depth=32)) as server:
            quote = server.quote(QuoteRequest(dst="10.0.0.1"))
        assert not quote.degraded
        assert quote.snapshot_digest == snapshot.digest
        assert server.served == 1

    def test_quote_many_preserves_order(self, registry, engine):
        publish(registry)
        requests = generate_requests(
            100, seed=3, snapshot=registry.current(), unknown_fraction=0.5
        )
        with QuoteServer(engine, ServeConfig(workers=3, queue_depth=256)) as server:
            quotes = server.quote_many(requests)
        expected = engine.quote_batch(requests)
        assert quotes == expected

    def test_submit_requires_running_server(self, engine):
        server = QuoteServer(engine)
        with pytest.raises(ConfigurationError):
            server.submit(QuoteRequest(dst="x"))

    def test_parameter_validation(self, engine):
        with pytest.raises(ConfigurationError):
            QuoteServer(engine, ServeConfig(workers=0))
        with pytest.raises(ConfigurationError):
            QuoteServer(engine, ServeConfig(timeout_ms=0))
        with pytest.raises(ConfigurationError):
            QuoteServer(engine, ServeConfig(max_batch=0))

    def test_legacy_keywords_warn_but_work(self, engine):
        with pytest.warns(DeprecationWarning, match="pass config=ServeConfig"):
            server = QuoteServer(engine, workers=4, timeout_ms=250.0)
        assert server.config.workers == 4
        assert server.config.timeout_ms == 250.0
        assert server.config.queue_depth == ServeConfig().queue_depth

    def test_caller_timeout_raises(self, registry):
        publish(registry)
        engine = _GatedEngine(registry)
        with QuoteServer(engine, ServeConfig(workers=1, timeout_ms=30.0)) as server:
            pending = server.submit(QuoteRequest(dst="10.0.0.1"))
            with pytest.raises(QuoteTimeoutError):
                pending.result(0.05)
            engine.gate.set()

    def test_expired_requests_fail_with_timeout_error(self, registry):
        publish(registry)
        engine = _GatedEngine(registry)
        with QuoteServer(engine, ServeConfig(workers=1, timeout_ms=20.0)) as server:
            # The gate holds the single worker inside batch #1 while the
            # second request expires in the queue.
            first = server.submit(QuoteRequest(dst="10.0.0.1"), timeout_ms=5000)
            time.sleep(0.05)  # let the worker pick up batch #1 and block
            second = server.submit(QuoteRequest(dst="10.0.0.1"), timeout_ms=20)
            time.sleep(0.05)  # let the second request's deadline pass
            engine.gate.set()
            assert not first.result(5.0).degraded
            with pytest.raises(QuoteTimeoutError):
                second.result(5.0)
        assert server.timed_out >= 1

    def test_full_queue_sheds_oldest_with_degraded_quote(self, registry):
        publish(registry)
        engine = _GatedEngine(registry)
        server = QuoteServer(engine, ServeConfig(workers=1, queue_depth=4, timeout_ms=5000))
        with server:
            time.sleep(0.02)  # workers idle, gate closed: queue only fills
            pendings = [
                server.submit(QuoteRequest(dst="10.0.0.1")) for _ in range(12)
            ]
            shed = [p for p in pendings if p.done]
            assert server.shed > 0
            assert len(shed) >= server.shed > 0
            for pending in shed:
                quote = pending.result(0.0)
                assert quote.degraded
                assert quote.unit_price == pytest.approx(P0)
                assert "shed" in quote.reason
            engine.gate.set()
            for pending in pendings:
                assert pending.result(5.0) is not None

    def test_stop_resolves_queued_requests_degraded(self, registry):
        publish(registry)
        engine = _GatedEngine(registry)
        server = QuoteServer(engine, ServeConfig(workers=1, queue_depth=64, timeout_ms=5000))
        server.start()
        pendings = [
            server.submit(QuoteRequest(dst="10.0.0.1")) for _ in range(8)
        ]
        engine.gate.set()
        server.stop()
        for pending in pendings:
            quote = pending.result(0.5)
            assert isinstance(quote, Quote)  # answered, never dropped

    def test_stop_drains_in_flight_work_before_shutdown(self, registry):
        """``stop()`` (drain=True, the default) honors every admitted
        request: nothing submitted before the stop comes back degraded."""
        publish(registry)
        engine = _GatedEngine(registry)
        server = QuoteServer(
            engine, ServeConfig(workers=1, queue_depth=64, timeout_ms=5000)
        )
        server.start()
        # The closed gate holds the worker inside batch #1 while the rest
        # pile up in the queue — all of it must still be *priced*.
        pendings = [
            server.submit(QuoteRequest(dst="10.0.0.1")) for _ in range(16)
        ]
        engine.gate.set()
        server.stop()
        for pending in pendings:
            quote = pending.result(1.0)
            assert not quote.degraded
            assert quote.known

    def test_stop_without_drain_degrades_queued_requests(self, registry):
        publish(registry)
        engine = _GatedEngine(registry)
        server = QuoteServer(
            engine,
            ServeConfig(workers=1, queue_depth=64, max_batch=1, timeout_ms=5000),
        )
        server.start()
        pendings = [
            server.submit(QuoteRequest(dst="10.0.0.1")) for _ in range(8)
        ]
        time.sleep(0.05)  # let the worker trap itself inside batch #1
        engine.gate.set()
        server.stop(drain=False)
        quotes = [p.result(1.0) for p in pendings]
        abandoned = [q for q in quotes if q.degraded]
        assert abandoned, "fast stop should abandon the queued tail"
        for quote in abandoned:
            assert quote.reason == "server stopped"
            assert quote.unit_price == pytest.approx(P0)

    def test_close_is_the_resource_spelling_of_stop(self, registry, engine):
        publish(registry)
        server = QuoteServer(engine, ServeConfig(workers=1)).start()
        pending = server.submit(QuoteRequest(dst="10.0.0.1"))
        server.close()
        assert not server.running
        assert not pending.result(1.0).degraded
        server.close()  # idempotent


# ----------------------------------------------------------------------
# Concurrent hot-swap: no torn reads, ever
# ----------------------------------------------------------------------


class TestConcurrentHotSwap:
    def test_readers_never_observe_mixed_state(self, registry, engine):
        """N reader threads quote while M swaps land; every non-degraded
        quote's price must equal the rate its own snapshot (by digest)
        defines for its tier — old or new, never a mixture."""
        scales = [1.0, 3.0, 5.0, 7.0]
        by_digest = {}
        for scale in scales:
            snapshot = publish(registry, scale)
            by_digest[snapshot.digest] = snapshot
        requests = generate_requests(
            16, seed=9, snapshot=registry.current(), unknown_fraction=0.25
        )
        stop = threading.Event()
        errors = []

        def swapper():
            i = 0
            while not stop.is_set():
                snapshot = publish(registry, scales[i % len(scales)])
                by_digest.setdefault(snapshot.digest, snapshot)
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    for quote in engine.quote_batch(requests):
                        if quote.degraded:
                            continue
                        snapshot = by_digest[quote.snapshot_digest]
                        if quote.known:
                            expected = snapshot.rates[quote.tier]
                        else:
                            expected = snapshot.blended_rate
                        if abs(quote.unit_price - expected) > 1e-12:
                            errors.append(
                                f"price {quote.unit_price} != {expected} "
                                f"for tier {quote.tier} of "
                                f"{quote.snapshot_digest[:8]}"
                            )
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(repr(exc))

        threads = [threading.Thread(target=swapper) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[:5]
        assert registry.swaps > len(scales)  # swaps really landed mid-read

    def test_batch_is_priced_under_one_snapshot(self, registry, engine):
        publish(registry)
        requests = generate_requests(
            256, seed=2, snapshot=registry.current(), unknown_fraction=0.1
        )
        stop = threading.Event()

        def swapper():
            while not stop.is_set():
                publish(registry, 3.0)
                publish(registry, 1.0)

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(20):
                digests = {
                    q.snapshot_digest
                    for q in engine.quote_batch(requests)
                    if q.snapshot_digest is not None
                }
                assert len(digests) == 1  # one snapshot per batch
        finally:
            stop.set()
            thread.join()


# ----------------------------------------------------------------------
# Chaos: kill the snapshot mid-load
# ----------------------------------------------------------------------


class TestSnapshotChaos:
    def test_clear_mid_load_degrades_and_recovers(self, registry, engine):
        publish(registry)
        requests = generate_requests(
            600, seed=7, snapshot=registry.current(), unknown_fraction=0.2
        )
        with QuoteServer(
            engine, ServeConfig(workers=3, queue_depth=128, timeout_ms=5000)
        ) as server:
            cleared = threading.Event()

            def chaos():
                time.sleep(0.002)
                registry.clear()
                cleared.set()

            killer = threading.Thread(target=chaos)
            killer.start()
            quotes = server.quote_many(requests)  # must not raise
            killer.join()
            assert cleared.is_set()

            # Everything was answered; anything quoted after the clear is
            # the blended-rate degraded answer.
            assert len(quotes) == len(requests)
            degraded = [q for q in quotes if q.degraded]
            for quote in degraded:
                assert quote.unit_price == pytest.approx(P0)
                assert quote.tier is None

            # The registry is empty: every subsequent quote degrades.
            followups = server.quote_many(requests[:32])
            assert all(q.degraded for q in followups)
            assert all(
                q.unit_price == pytest.approx(P0) for q in followups
            )

            # Recovery is automatic on the next publish.
            snapshot = publish(registry)
            recovered = server.quote_many(requests[:32])
            assert all(not q.degraded for q in recovered)
            assert all(
                q.snapshot_digest == snapshot.digest for q in recovered
            )


# ----------------------------------------------------------------------
# End to end: stream publishes, registry swaps, quotes change
# ----------------------------------------------------------------------


class TestStreamToServeRoundTrip:
    def test_republished_designs_change_quotes(self, registry):
        trace = generate_network_trace(
            "eu_isp", n_flows=40, seed=11, duration_seconds=3600.0
        )
        source = TraceReplaySource(
            trace,
            export_interval_ms=60_000,
            shift=DemandShift(at_ms=1_800_000, factor=4.0, fraction=0.5),
        )
        pipeline = StreamingPipeline(
            source,
            distance_fn=trace.distance_for,
            demand_model=CEDDemand(alpha=1.1),
            cost_model=COST_MODEL,
            config=StreamConfig(window_ms=600_000, drift_threshold=0.05),
        )
        versions = []
        subscriber = registry.subscriber(pipeline.config_digest)

        def tracking_subscriber(publication):
            subscriber(publication)
            snapshot = registry.require()
            versions.append((snapshot.version, snapshot.rates))

        pipeline.repricer.on_design_published = tracking_subscriber
        engine = QuoteEngine(registry, COST_MODEL, fallback_blended_rate=P0)
        report = pipeline.run()

        # The demand shift forced at least one re-tier beyond the initial
        # design, and each publication hot-swapped the registry.
        assert report.retier_events >= 2
        assert registry.swaps == report.retier_events == len(versions)
        final = registry.require()
        assert final.version == len(versions)
        assert final.config_digest == pipeline.config_digest

        # Quotes now reflect the *latest* published tier prices.
        dst = next(iter(pipeline.repricer.design.tier_of_destination))
        quote = engine.quote(QuoteRequest(dst=dst, volume_mbps=2.0))
        assert not quote.degraded and quote.known
        assert quote.snapshot_digest == final.digest
        expected = final.rates[
            pipeline.repricer.design.tier_of_destination[dst]
        ]
        assert quote.unit_price == pytest.approx(expected)

        # And the first published rate card genuinely differs from the
        # last (the shift repriced the market).
        assert versions[0][1] != versions[-1][1]


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------


class TestLoadGenerator:
    def test_requests_are_deterministic(self, registry):
        snapshot = publish(registry)
        a = generate_requests(50, seed=4, snapshot=snapshot)
        b = generate_requests(50, seed=4, snapshot=snapshot)
        assert a == b
        c = generate_requests(50, seed=5, snapshot=snapshot)
        assert a != c

    def test_unknown_fraction_bounds(self, registry):
        snapshot = publish(registry)
        requests = generate_requests(
            400, seed=1, snapshot=snapshot, unknown_fraction=0.25
        )
        unknown = sum(
            1 for r in requests if r.dst.startswith("198.51.100.")
        )
        assert 0.1 < unknown / len(requests) < 0.45

    def test_run_load_accounts_for_every_request(self, registry, engine):
        publish(registry)
        requests = generate_requests(
            300, seed=6, snapshot=registry.current(), unknown_fraction=0.2
        )
        with QuoteServer(engine, ServeConfig(workers=2, queue_depth=512)) as server:
            report = run_load(server, requests, burst=64)
        assert report.answered + report.timed_out == report.n_requests
        assert report.answered == report.priced + report.degraded
        assert report.priced > 0
        assert report.quotes_per_second > 0
        assert "p99" in report.latency_ms
        assert "quotes/s" in report.render()
