"""Tests for the AS-level ecosystem generator (repro.ecosystem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.config import EcosystemConfig
from repro.ecosystem import (
    Base,
    CLASS_CUSTOMER,
    CLASS_PEER,
    CLASS_PROVIDER,
    CONTENT,
    EcosystemBuilder,
    EcosystemSpec,
    Relationships,
    Routing,
    STUB,
    TIER1,
    TIER2,
    Traffic,
    UNREACHABLE,
    as_address,
    build_ecosystem,
    compute_routes,
    design_for_as,
    exit_selector_for,
    index_for_address,
    measured_flowset_for,
    published_snapshot_for,
    render_ecosystem,
    transit_flows_for,
    verify_path_valley_free,
    verify_valley_free,
)
from repro.errors import ConfigurationError, DataError, TopologyError
from repro.runtime.spec import ExperimentSpec
from repro.synth.datasets import load_dataset


@pytest.fixture(scope="module")
def world():
    """One 50-AS world shared across read-only tests."""
    return build_ecosystem(EcosystemSpec.from_counts(ases=50, ixps=3, seed=0))


# ----------------------------------------------------------------------
# Builder layers
# ----------------------------------------------------------------------


class TestBuilder:
    def test_layers_render_in_order(self):
        eco = (
            EcosystemBuilder(seed=3)
            .add_layer(Base(n_tier1=2, n_tier2=4, n_stub=8, n_content=2))
            .add_layer(Relationships())
            .add_layer(Routing())
            .add_layer(Traffic())
            .render()
        )
        assert eco.n_ases == 16
        assert eco.tables is not None
        assert eco.traffic is not None

    def test_missing_dependency_rejected(self):
        builder = EcosystemBuilder().add_layer(Base()).add_layer(Routing())
        with pytest.raises(DataError, match="requires"):
            builder.render()

    def test_duplicate_layer_rejected(self):
        with pytest.raises(DataError, match="base"):
            EcosystemBuilder().add_layer(Base()).add_layer(Base())

    def test_empty_builder_rejected(self):
        with pytest.raises(DataError):
            EcosystemBuilder().render()

    def test_address_plan_round_trips(self):
        for index in (0, 255, 256, 300):
            assert index_for_address(as_address(index, 7)) == index
        with pytest.raises(DataError):
            index_for_address("192.0.2.1")


# ----------------------------------------------------------------------
# Valley-free routing invariants
# ----------------------------------------------------------------------


class TestValleyFree:
    def test_full_reachability_under_tier1_clique(self, world):
        assert world.tables.reachable_fraction() == 1.0

    def test_paths_are_valley_free(self, world):
        # Exhaustive over the sampled pairs: reconstruction length checks
        # and the up* peer? down* phase machine both run per path.
        assert verify_valley_free(world, max_pairs=2000) > 0

    def test_no_valley_passes_verifier(self, world):
        # The verifier itself must reject a fabricated valley: customer
        # -> provider -> customer -> provider climbs after descending.
        c, p = (int(x) for x in world.up_edges[0])
        other_customers = [
            int(cc) for cc, pp in world.up_edges if int(pp) == p and int(cc) != c
        ]
        if not other_customers:
            pytest.skip("provider with a single customer")
        c2 = other_customers[0]
        providers_of_c2 = [
            int(pp) for cc, pp in world.up_edges if int(cc) == c2
        ]
        valley = [c, p, c2, providers_of_c2[0]]
        with pytest.raises(TopologyError, match="valley"):
            verify_path_valley_free(world, valley)

    def test_class_preference_customer_over_peer_over_provider(self, world):
        # Wherever a customer route exists, it must have been selected.
        tables = world.tables
        n = world.n_ases
        for c, p in world.up_edges[:20]:
            # The provider reaches its customer via a customer route.
            assert tables.route_class[int(p), int(c)] == CLASS_CUSTOMER
        for a, b in world.peer_edges:
            a, b = int(a), int(b)
            assert tables.route_class[a, b] in (CLASS_CUSTOMER, CLASS_PEER)
        assert np.all(tables.path_len[np.eye(n, dtype=bool)] == 0)

    def test_peer_routes_not_re_exported_upward(self):
        # Two providers peered at the top, one customer each: customers
        # reach across (up, peer, down) but the providers must not learn
        # a path to each other's customer via their own customer.
        up = np.array([[2, 0], [3, 1]], dtype=np.int32)
        peer = np.array([[0, 1]], dtype=np.int32)
        tables = compute_routes(4, up, peer)
        assert tables.path_len[2, 3] == 3  # 2 -> 0 -> 1 -> 3
        assert tables.route_class[0, 3] == CLASS_PEER
        assert tables.route_class[2, 3] == CLASS_PROVIDER

    def test_unreachable_without_clique(self):
        # Two disconnected provider trees: cross-tree pairs unreachable.
        up = np.array([[1, 0], [3, 2]], dtype=np.int32)
        peer = np.zeros((0, 2), dtype=np.int32)
        tables = compute_routes(4, up, peer)
        assert tables.path_len[0, 2] == UNREACHABLE
        assert tables.path_len[1, 3] == UNREACHABLE
        assert tables.path_len[1, 0] == 1
        assert tables.reachable_fraction() < 1.0

    def test_provider_cycle_rejected(self):
        up = np.array([[0, 1], [1, 2], [2, 0]], dtype=np.int32)
        with pytest.raises(TopologyError, match="cycle"):
            compute_routes(3, up, np.zeros((0, 2), dtype=np.int32))


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        spec = EcosystemSpec.from_counts(ases=40, ixps=2, seed=11)
        a, b = render_ecosystem(spec), render_ecosystem(spec)
        assert a.up_edges.tobytes() == b.up_edges.tobytes()
        assert a.peer_edges.tobytes() == b.peer_edges.tobytes()
        assert a.tables.path_len.tobytes() == b.tables.path_len.tobytes()
        assert a.tables.next_hop.tobytes() == b.tables.next_hop.tobytes()
        assert a.tables.route_class.tobytes() == b.tables.route_class.tobytes()
        for probe in (a.ases[0].asn, a.ases[-1].asn):
            fa, fb = a.flow_table_for(probe), b.flow_table_for(probe)
            assert fa.demands.tobytes() == fb.demands.tobytes()
            assert fa.distances.tobytes() == fb.distances.tobytes()
        assert a.netflow_records_for(a.ases[3].asn) == b.netflow_records_for(
            b.ases[3].asn
        )

    def test_different_seeds_differ(self):
        a = render_ecosystem(EcosystemSpec.from_counts(ases=40, seed=1))
        b = render_ecosystem(EcosystemSpec.from_counts(ases=40, seed=2))
        assert (
            a.up_edges.tobytes() != b.up_edges.tobytes()
            or a.peer_edges.tobytes() != b.peer_edges.tobytes()
        )

    def test_build_is_memoized(self):
        spec = EcosystemSpec.from_counts(ases=40, ixps=2, seed=11)
        assert build_ecosystem(spec) is build_ecosystem(spec)

    def test_spec_digest_tracks_fields(self):
        base = EcosystemSpec.from_counts(ases=50, seed=0)
        assert base.digest() == EcosystemSpec.from_counts(ases=50, seed=0).digest()
        assert base.digest() != EcosystemSpec.from_counts(ases=50, seed=1).digest()
        assert base.digest() != EcosystemSpec.from_counts(ases=60, seed=0).digest()

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            EcosystemSpec.from_counts(ases=3)
        with pytest.raises(ConfigurationError):
            EcosystemSpec(n_tier1=0)
        with pytest.raises(ConfigurationError):
            EcosystemSpec(peering_density=1.5)
        with pytest.raises(ConfigurationError):
            EcosystemSpec(sampling_interval=0)


# ----------------------------------------------------------------------
# Traffic and the measure chain
# ----------------------------------------------------------------------


class TestTraffic:
    def test_content_ases_source_most_traffic(self, world):
        content = world.flow_table_for(world.ases_of_kind(CONTENT)[0].asn)
        stub = world.flow_table_for(world.ases_of_kind(STUB)[0].asn)
        assert content.aggregate_gbps() > stub.aggregate_gbps()

    def test_measured_matches_ground_truth_scale(self, world):
        asn = world.ases_of_kind(TIER2)[0].asn
        truth = world.flow_table_for(asn)
        measured = measured_flowset_for(world, asn, through_wire=True)
        assert len(measured) == len(truth)
        # Sampling quantizes each flow, so totals agree loosely only.
        assert measured.aggregate_gbps() == pytest.approx(
            truth.aggregate_gbps(), rel=0.05
        )

    def test_wire_roundtrip_is_lossless(self, world):
        asn = world.ases_of_kind(STUB)[0].asn
        wired = measured_flowset_for(world, asn, through_wire=True)
        direct = measured_flowset_for(world, asn, through_wire=False)
        assert wired.demands.tobytes() == direct.demands.tobytes()
        assert wired.distances.tobytes() == direct.distances.tobytes()

    def test_wire_roundtrip_past_255_routers(self):
        # A 200-AS world has >255 routers, exercising the widened
        # engine mapping end to end.
        eco = build_ecosystem(EcosystemSpec.from_counts(ases=200, ixps=4, seed=1))
        assert len(eco.router_names()) > 255
        asn = eco.ases[-1].asn
        wired = measured_flowset_for(eco, asn, through_wire=True)
        direct = measured_flowset_for(eco, asn, through_wire=False)
        assert wired.demands.tobytes() == direct.demands.tobytes()

    def test_design_for_stub_and_tier2(self, world):
        for kind in (STUB, TIER2):
            asn = world.ases_of_kind(kind)[0].asn
            result = design_for_as(world, asn, n_tiers=3)
            assert result["kind"] == kind
            assert result["n_flows"] == world.n_ases - 1
            assert 0.0 < result["profit_capture"] <= 1.0
            assert len(result["tier_prices"]) == 3

    def test_unknown_asn_rejected(self, world):
        with pytest.raises(TopologyError):
            world.flow_table_for(1)
        with pytest.raises(TopologyError):
            measured_flowset_for(world, 1)


# ----------------------------------------------------------------------
# Tier pricing over ecosystem paths
# ----------------------------------------------------------------------


class TestEcosystemPricing:
    def test_tier_aware_beats_hot_potato(self, world):
        provider = world.ases_of_kind(TIER1)[0]
        # A multi-city customer has real exit choices.
        customer = next(
            a
            for a in world.ases_of_kind(TIER2) + world.ases_of_kind(CONTENT)
            if len({c.key for c in a.cities}) >= 2
        )
        snapshot = published_snapshot_for(world, provider.asn, n_tiers=3)
        selector = exit_selector_for(world, customer.asn, snapshot)
        result = selector.savings(transit_flows_for(world, customer.asn))
        assert result["savings"] > 0
        assert 0 < result["savings_fraction"] < 1

    def test_snapshot_prices_increase_with_distance_tier(self, world):
        provider = world.ases_of_kind(TIER1)[0]
        snapshot = published_snapshot_for(world, provider.asn, n_tiers=4)
        rates = [snapshot.rates[t] for t in sorted(snapshot.rates)]
        assert rates == sorted(rates)
        assert rates[0] < snapshot.blended_rate < rates[-1]

    def test_unknown_pair_falls_back_to_blended(self, world):
        from repro.ecosystem import snapshot_tier_price

        provider = world.ases_of_kind(TIER1)[0]
        snapshot = published_snapshot_for(world, provider.asn)
        price = snapshot_tier_price(snapshot)
        assert price("no-such-city", "no-such-as") == snapshot.blended_rate


# ----------------------------------------------------------------------
# Config and CLI
# ----------------------------------------------------------------------


class TestEcosystemConfig:
    def test_defaults(self):
        config = EcosystemConfig.resolve()
        assert (config.ases, config.ixps, config.seed) == (50, 3, 0)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ECOSYSTEM_ASES", "80")
        monkeypatch.setenv("REPRO_ECOSYSTEM_SEED", "5")
        config = EcosystemConfig.resolve()
        assert (config.ases, config.seed) == (80, 5)

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ECOSYSTEM_ASES", "many")
        with pytest.raises(ConfigurationError, match="REPRO_ECOSYSTEM_ASES"):
            EcosystemConfig.resolve()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EcosystemConfig(ases=2)
        with pytest.raises(ConfigurationError):
            EcosystemConfig(ixps=-1)


class TestEcosystemCli:
    def test_selftest_runs_clean(self, capsys):
        assert main(["ecosystem", "--ases", "30", "--seed", "2", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "valley-free" in out
        assert "rebuild byte-identical" in out
        assert "design as" in out

    def test_emit_netflow(self, tmp_path, capsys):
        out_dir = tmp_path / "nf"
        assert (
            main(["ecosystem", "--ases", "30", "--emit-netflow", str(out_dir)])
            == 0
        )
        files = sorted(out_dir.glob("*.nf5"))
        assert len(files) == 30
        assert all(f.stat().st_size > 0 for f in files)


# ----------------------------------------------------------------------
# The synth distance-model hook
# ----------------------------------------------------------------------


class TestEcosystemDistanceModel:
    def test_deterministic_and_distinct_from_synthetic(self):
        a = load_dataset("cdn", n_flows=60, seed=4, distance_model="ecosystem")
        b = load_dataset("cdn", n_flows=60, seed=4, distance_model="ecosystem")
        assert a.demands.tobytes() == b.demands.tobytes()
        assert a.distances.tobytes() == b.distances.tobytes()
        synthetic = load_dataset("cdn", n_flows=60, seed=4)
        assert a.distances.tobytes() != synthetic.distances.tobytes()
        # Demand calibration is shared; only distances change model.
        assert a.demands.tobytes() == synthetic.demands.tobytes()

    def test_weighted_mean_matches_table1(self):
        flows = load_dataset(
            "internet2", n_flows=80, seed=0, distance_model="ecosystem"
        )
        row = flows.table1_row()
        assert row["w_avg_distance_miles"] == pytest.approx(660.0)

    def test_invalid_model_rejected(self):
        with pytest.raises(DataError, match="distance model"):
            load_dataset("eu_isp", distance_model="geodesic")

    def test_spec_digest_gains_field_only_when_non_default(self):
        default = ExperimentSpec(dataset="eu_isp")
        eco = ExperimentSpec(dataset="eu_isp", distance_model="ecosystem")
        assert "distance_model" not in default.market_key()
        assert eco.market_key()["distance_model"] == "ecosystem"
        assert default.digest() != eco.digest()
