"""Tests for the tracing subsystem: span nesting, the no-op path,
JSONL export/summarize, cross-process and cross-thread propagation, and
the CLI ``--trace`` / ``trace summarize`` round trip."""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.core.cost import LinearDistanceCost
from repro.obs import (
    METRICS,
    NoopTracer,
    Span,
    TraceContext,
    TraceExporter,
    Tracer,
    read_trace,
    render_trace_summary,
    summarize_trace,
)
from repro.runtime.executor import PoolExecutor
from repro.serve import (
    QuoteEngine,
    QuoteRequest,
    QuoteServer,
    ServeConfig,
    SnapshotRegistry,
)


@pytest.fixture
def tracer():
    """A buffering tracer installed as the process global, then restored."""
    installed = Tracer()
    previous = obs.set_tracer(installed)
    yield installed
    obs.set_tracer(previous)


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# Span model + tracer
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_follows_control_flow(self, tracer):
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                tracer.event("tick", n=1)
        spans = tracer.drain()
        assert [s.name for s in spans] == ["inner", "outer"]  # finish order
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.attributes == {"kind": "test"}
        assert inner.events[0]["name"] == "tick"
        assert inner.duration_s <= outer.duration_s

    def test_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.drain()
        assert span.status == obs.STATUS_ERROR
        event = span.events[0]
        assert event["name"] == "exception"
        assert event["type"] == "ValueError"
        assert event["offset_s"] >= 0.0
        assert tracer.span_stats()["failing"]["errors"] == 1

    def test_status_validated(self, tracer):
        with tracer.span("s") as span:
            span.set_status(obs.STATUS_DEGRADED)
            with pytest.raises(ValueError):
                span.set_status("on-fire")
        assert tracer.drain()[0].status == obs.STATUS_DEGRADED

    def test_span_dict_round_trip(self, tracer):
        with tracer.span("unit", item=3) as span:
            span.add_event("checkpoint", phase="mid")
        restored = Span.from_dict(tracer.drain()[0].to_dict())
        assert restored.name == "unit"
        assert restored.span_id == span.span_id
        assert restored.attributes == {"item": 3}
        assert restored.events[0]["name"] == "checkpoint"
        assert restored.pid == os.getpid()


class TestNoopPath:
    def test_disabled_by_default(self):
        assert not obs.tracing_enabled()
        assert isinstance(obs.get_tracer(), NoopTracer)
        assert obs.current_context() is None

    def test_noop_span_accepts_the_full_interface(self):
        with obs.span("anything", n=1) as span:
            span.set_attribute("a", 2)
            span.set_status(obs.STATUS_ERROR)
            span.add_event("e")
            obs.event("loose")
        assert obs.span_stats() == {}
        assert obs.adopt_spans([], None) == 0

    def test_configure_tracing_toggles(self, tmp_path):
        target = tmp_path / "t.jsonl"
        installed = obs.configure_tracing(str(target))
        try:
            assert obs.tracing_enabled()
            with obs.span("configured"):
                pass
        finally:
            obs.configure_tracing(None)
        assert not obs.tracing_enabled()
        assert installed.exporter.exported == 1
        assert read_trace(target)[0].name == "configured"


# ----------------------------------------------------------------------
# Export + summarize
# ----------------------------------------------------------------------


class TestExportAndSummarize:
    def test_jsonl_round_trip_children_before_parents(self, tmp_path, tracer):
        tracer.exporter = TraceExporter(tmp_path / "trace.jsonl")
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        tracer.close()
        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["child", "parent"]
        spans = read_trace(tmp_path / "trace.jsonl")
        assert spans[0].parent_id == spans[1].span_id

    def test_summarize_rolls_up_stages(self, tracer):
        for _ in range(3):
            with tracer.span("work"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("x")
        summary = summarize_trace(tracer.drain())
        assert summary["spans"] == 4
        assert summary["orphans"] == 0
        assert summary["errors"] == 1
        stage = summary["stages"]["work"]
        assert stage["count"] == 4
        assert stage["errors"] == 1
        assert stage["p50_ms"] <= stage["p95_ms"] <= stage["max_ms"]
        text = render_trace_summary(summary, "trace.jsonl")
        assert "p50 ms" in text and "work" in text
        assert "WARNING" not in text

    def test_summarize_counts_orphans(self, tracer):
        with tracer.span("root"):
            pass
        (span,) = tracer.drain()
        span.parent_id = "feedfeedfeedfeed"  # points nowhere
        summary = summarize_trace([span])
        assert summary["orphans"] == 1
        assert "WARNING" in render_trace_summary(summary)


# ----------------------------------------------------------------------
# Propagation: adopt, process pools, server threads
# ----------------------------------------------------------------------


class TestPropagation:
    def test_adopt_grafts_foreign_spans(self, tracer):
        foreign = Tracer()
        with foreign.span("worker.root"):
            with foreign.span("worker.child"):
                pass
        shipped = [s.to_dict() for s in foreign.drain()]
        with tracer.span("submitter") as submitter:
            parent = submitter.context()
        assert tracer.adopt(shipped, parent) == 2
        spans = {s.name: s for s in tracer.drain()}
        assert spans["worker.root"].trace_id == submitter.trace_id
        assert spans["worker.root"].parent_id == submitter.span_id
        # The worker-internal edge survives the graft.
        assert spans["worker.child"].parent_id == spans["worker.root"].span_id

    def test_activate_none_is_a_no_op(self, tracer):
        with obs.activate(None):
            with tracer.span("root") as span:
                assert span.parent_id is None

    def test_remote_parent_adopts_new_roots(self, tracer):
        remote = TraceContext(trace_id="a" * 16, span_id="b" * 16)
        with obs.activate(remote):
            with tracer.span("joined") as span:
                pass
        assert span.trace_id == remote.trace_id
        assert span.parent_id == remote.span_id

    def test_pool_map_ships_worker_spans_home(self, tracer):
        with tracer.span("driver") as driver:
            result = PoolExecutor(jobs=2).map(_square, list(range(6)))
        assert result == [x * x for x in range(6)]
        spans = tracer.drain()
        units = [s for s in spans if s.name == "runtime.work_unit"]
        assert len(units) == 6
        assert {s.trace_id for s in units} == {driver.trace_id}
        # Every unit really crossed the process boundary...
        assert all(s.pid != os.getpid() for s in units)
        # ...and still resolves to a parent in this trace (no orphans).
        summary = summarize_trace(spans)
        assert summary["orphans"] == 0
        assert len(summary["processes"]) >= 2

    def test_stream_run_traces_each_window(self, tracer):
        from repro.core.ced import CEDDemand
        from repro.stream import (
            StreamConfig,
            StreamingPipeline,
            TraceReplaySource,
        )
        from repro.synth.trace import generate_network_trace

        trace = generate_network_trace(
            "eu_isp", n_flows=20, seed=7, duration_seconds=1800.0
        )
        pipeline = StreamingPipeline(
            TraceReplaySource(trace, export_interval_ms=60_000),
            distance_fn=trace.distance_for,
            demand_model=CEDDemand(alpha=1.1),
            cost_model=LinearDistanceCost(theta=0.2),
            config=StreamConfig(window_ms=600_000),
        )
        report = pipeline.run()
        spans = tracer.drain()
        run_span = next(s for s in spans if s.name == "stream.run")
        windows = [s for s in spans if s.name == "stream.window"]
        assert len(windows) == len(report.results) >= 1
        assert all(w.parent_id == run_span.span_id for w in windows)
        assert run_span.attributes["window_ms"] == 600_000
        assert all("records" in w.attributes for w in windows)

    def test_quote_server_batches_join_callers_trace(self, tracer):
        engine = QuoteEngine(
            SnapshotRegistry(), LinearDistanceCost(0.2),
            fallback_blended_rate=20.0,
        )
        with tracer.span("caller") as caller:
            with QuoteServer(engine, ServeConfig(workers=2)) as server:
                quote = server.quote(QuoteRequest(dst="10.0.0.1"))
        assert quote.degraded  # empty registry: blended-rate fallback
        spans = tracer.drain()
        batches = [s for s in spans if s.name == "serve.batch"]
        assert batches
        for batch in batches:
            assert batch.trace_id == caller.trace_id
            assert batch.parent_id == caller.span_id
            assert batch.status == obs.STATUS_DEGRADED


# ----------------------------------------------------------------------
# Metrics merge + alias
# ----------------------------------------------------------------------


class TestMetricsMerge:
    def test_to_json_merges_spans_and_counters(self, tracer):
        with tracer.span("merged.stage"):
            pass
        payload = json.loads(obs.to_json(command="test"))
        assert payload["command"] == "test"
        assert "counters" in payload
        assert payload["spans"]["merged.stage"]["calls"] == 1

    def test_runtime_metrics_alias_is_the_same_object(self):
        import repro.runtime
        import repro.runtime.metrics as legacy

        assert legacy.METRICS is METRICS
        assert repro.runtime.METRICS is METRICS


# ----------------------------------------------------------------------
# CLI end-to-end: --trace, trace summarize
# ----------------------------------------------------------------------


class TestCliTracing:
    def test_figure_trace_spans_multiple_processes(self, capsys, tmp_path):
        trace_path = tmp_path / "fig14.jsonl"
        code = main([
            "--flows", "24", "figure", "14",
            "--jobs", "2", "--no-cache", "--trace", str(trace_path),
        ])
        assert code == 0
        spans = read_trace(trace_path)
        summary = summarize_trace(spans)
        assert summary["orphans"] == 0
        assert summary["errors"] == 0
        worker_pids = set(summary["processes"]) - {os.getpid()}
        assert len(worker_pids) >= 2  # spans shipped home from the pool
        assert spans[-1].name == "cli.figure"  # root finishes last
        assert "runtime.work_unit" in summary["stages"]
        assert summary["stages"]["runtime.evaluate_spec"]["processes"] >= 2

        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "orphans: 0" in out
        assert "p50 ms" in out and "p95 ms" in out
        assert "runtime.evaluate_spec" in out

    def test_trace_disabled_leaves_no_file(self, capsys, tmp_path):
        assert main(["--flows", "24", "figure", "4"]) == 0
        assert not obs.tracing_enabled()
        assert list(tmp_path.iterdir()) == []
