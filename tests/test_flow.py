"""Tests for the Flow / FlowSet containers."""

import math

import numpy as np
import pytest

from repro.core.flow import Flow, FlowSet, INTERNATIONAL, METRO, NATIONAL
from repro.errors import DataError


class TestFlow:
    def test_valid_flow(self):
        flow = Flow(demand_mbps=10.0, distance_miles=50.0, region=METRO)
        assert flow.demand_mbps == 10.0
        assert flow.region == METRO

    def test_zero_distance_is_allowed(self):
        assert Flow(demand_mbps=1.0, distance_miles=0.0).distance_miles == 0.0

    @pytest.mark.parametrize("demand", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_demand_rejected(self, demand):
        with pytest.raises(DataError):
            Flow(demand_mbps=demand, distance_miles=1.0)

    @pytest.mark.parametrize("distance", [-0.1, float("nan"), float("inf")])
    def test_invalid_distance_rejected(self, distance):
        with pytest.raises(DataError):
            Flow(demand_mbps=1.0, distance_miles=distance)

    def test_unknown_region_rejected(self):
        with pytest.raises(DataError, match="region"):
            Flow(demand_mbps=1.0, distance_miles=1.0, region="galactic")

    def test_flow_is_frozen(self):
        flow = Flow(demand_mbps=1.0, distance_miles=1.0)
        with pytest.raises(AttributeError):
            flow.demand_mbps = 2.0


class TestFlowSetConstruction:
    def test_from_arrays(self, small_flows):
        assert len(small_flows) == 4
        assert small_flows.demands[0] == 120.0

    def test_from_flows_roundtrip(self):
        flows = [
            Flow(demand_mbps=5.0, distance_miles=10.0, region=METRO, src="a"),
            Flow(demand_mbps=7.0, distance_miles=900.0, region=NATIONAL, src="b"),
        ]
        fs = FlowSet.from_flows(flows)
        assert len(fs) == 2
        assert fs[0] == flows[0]
        assert fs[1] == flows[1]

    def test_from_zero_flows_rejected(self):
        with pytest.raises(DataError):
            FlowSet.from_flows([])

    def test_empty_arrays_rejected(self):
        with pytest.raises(DataError):
            FlowSet(demands_mbps=[], distances_miles=[])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError, match="length"):
            FlowSet(demands_mbps=[1.0, 2.0], distances_miles=[1.0])

    def test_negative_demand_rejected(self):
        with pytest.raises(DataError):
            FlowSet(demands_mbps=[1.0, -2.0], distances_miles=[1.0, 2.0])

    def test_nan_distance_rejected(self):
        with pytest.raises(DataError):
            FlowSet(demands_mbps=[1.0], distances_miles=[float("nan")])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(DataError):
            FlowSet(demands_mbps=[[1.0, 2.0]], distances_miles=[[1.0, 2.0]])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(DataError, match="regions"):
            FlowSet(
                demands_mbps=[1.0, 2.0],
                distances_miles=[1.0, 2.0],
                regions=[METRO],
            )

    def test_unknown_region_label_rejected(self):
        with pytest.raises(DataError, match="region"):
            FlowSet(
                demands_mbps=[1.0],
                distances_miles=[1.0],
                regions=["continental"],
            )

    def test_all_none_labels_collapse_to_none(self):
        fs = FlowSet(
            demands_mbps=[1.0, 2.0],
            distances_miles=[1.0, 2.0],
            regions=[None, None],
        )
        assert fs.regions is None

    def test_arrays_are_read_only(self, small_flows):
        with pytest.raises(ValueError):
            small_flows.demands[0] = 999.0


class TestFlowSetAccess:
    def test_iteration_yields_flows(self, labeled_flows):
        flows = list(labeled_flows)
        assert len(flows) == 5
        assert all(isinstance(f, Flow) for f in flows)
        assert flows[0].region == METRO
        assert flows[4].region == INTERNATIONAL

    def test_getitem(self, small_flows):
        flow = small_flows[2]
        assert flow.demand_mbps == 8.0
        assert flow.distance_miles == 400.0

    def test_subset_preserves_order_and_labels(self, labeled_flows):
        sub = labeled_flows.subset([4, 0])
        assert sub.demands.tolist() == [5.0, 100.0]
        assert sub.regions == (INTERNATIONAL, METRO)

    def test_subset_empty_rejected(self, small_flows):
        with pytest.raises(DataError):
            small_flows.subset([])

    def test_replace_demands(self, small_flows):
        replaced = small_flows.replace(demands_mbps=[1.0, 1.0, 1.0, 1.0])
        assert replaced.demands.tolist() == [1.0] * 4
        assert replaced.distances.tolist() == small_flows.distances.tolist()
        # Original is untouched.
        assert small_flows.demands[0] == 120.0

    def test_repr_mentions_size(self, small_flows):
        assert "n=4" in repr(small_flows)


class TestFlowSetStatistics:
    def test_aggregate_gbps(self, small_flows):
        assert small_flows.aggregate_gbps() == pytest.approx(170.0 / 1000.0)

    def test_weighted_average_distance(self):
        fs = FlowSet(demands_mbps=[3.0, 1.0], distances_miles=[10.0, 50.0])
        assert fs.weighted_average_distance() == pytest.approx(20.0)

    def test_distance_cv_zero_for_equal_distances(self):
        fs = FlowSet(demands_mbps=[1.0, 9.0], distances_miles=[5.0, 5.0])
        assert fs.distance_cv() == pytest.approx(0.0)

    def test_distance_cv_weighted(self):
        fs = FlowSet(demands_mbps=[1.0, 1.0], distances_miles=[10.0, 30.0])
        # mean 20, std 10 -> CV 0.5
        assert fs.distance_cv() == pytest.approx(0.5)

    def test_demand_cv_unweighted(self):
        fs = FlowSet(demands_mbps=[1.0, 3.0], distances_miles=[1.0, 1.0])
        assert fs.demand_cv() == pytest.approx(0.5)

    def test_table1_row_keys(self, small_flows):
        row = small_flows.table1_row()
        assert set(row) == {
            "w_avg_distance_miles",
            "distance_cv",
            "aggregate_gbps",
            "demand_cv",
        }
        assert all(math.isfinite(v) for v in row.values())

    def test_stats_match_numpy_reference(self, medium_flows):
        q = medium_flows.demands
        d = medium_flows.distances
        assert medium_flows.weighted_average_distance() == pytest.approx(
            float(np.sum(q * d) / np.sum(q))
        )
        assert medium_flows.demand_cv() == pytest.approx(
            float(np.std(q) / np.mean(q))
        )
