"""Tests for the §2.1 offering taxonomy as pricing structures."""

import numpy as np
import pytest

from repro.core.ced import CEDDemand
from repro.core.cost import DestinationTypeCost, LinearDistanceCost, RegionalCost
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.errors import BundlingError
from repro.peering.offerings import (
    BlendedRateOffering,
    PaidPeeringOffering,
    RegionalPricingOffering,
    backplane_bundles,
    compare_offerings,
    render_offerings,
)
from repro.synth.datasets import load_dataset


@pytest.fixture(scope="module")
def flows():
    return load_dataset("eu_isp", n_flows=80, seed=23)


@pytest.fixture(scope="module")
def linear_market(flows):
    return Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)


@pytest.fixture(scope="module")
def regional_market(flows):
    return Market(flows, CEDDemand(1.1), RegionalCost(1.1), 20.0)


@pytest.fixture(scope="module")
def onnet_market(flows):
    return Market(flows, CEDDemand(1.1), DestinationTypeCost(0.3), 20.0)


class TestIndividualOfferings:
    def test_blended_is_one_bundle(self, linear_market):
        bundles = BlendedRateOffering().bundle(
            linear_market.bundling_inputs(), 1
        )
        assert len(bundles) == 1
        assert bundles[0].size == linear_market.n_flows

    def test_paid_peering_splits_on_off_net(self, onnet_market):
        bundles = PaidPeeringOffering().bundle(
            onnet_market.bundling_inputs(), 2
        )
        assert len(bundles) == 2
        for members in bundles:
            labels = {onnet_market.classes[int(i)] for i in members}
            assert len(labels) == 1

    def test_paid_peering_needs_classes(self, linear_market):
        with pytest.raises(BundlingError, match="destination-type"):
            PaidPeeringOffering().bundle(linear_market.bundling_inputs(), 2)

    def test_paid_peering_discounts_on_net(self, onnet_market):
        bundles = PaidPeeringOffering().bundle(
            onnet_market.bundling_inputs(), 2
        )
        prices = onnet_market.demand_model.bundle_prices(
            onnet_market.valuations, onnet_market.costs, bundles
        )
        by_class = {}
        for members in bundles:
            label = onnet_market.classes[int(members[0])]
            by_class[label] = float(prices[members[0]])
        assert by_class["on-net"] < by_class["off-net"]

    def test_regional_pricing_one_bundle_per_region(self, regional_market):
        bundles = RegionalPricingOffering().bundle(
            regional_market.bundling_inputs(), 3
        )
        assert len(bundles) == len(set(regional_market.classes))

    def test_backplane_split(self, linear_market):
        bundles = backplane_bundles(linear_market, exchange_radius_miles=25.0)
        assert len(bundles) == 2
        distances = linear_market.flows.distances
        assert distances[bundles[0]].max() <= 25.0
        assert distances[bundles[1]].min() > 25.0

    def test_backplane_degenerate_radius(self, linear_market):
        with pytest.raises(BundlingError, match="degenerates"):
            backplane_bundles(linear_market, exchange_radius_miles=1e9)
        with pytest.raises(BundlingError, match="positive"):
            backplane_bundles(linear_market, exchange_radius_miles=0.0)


class TestComparison:
    def test_blended_captures_nothing(self, linear_market):
        results = compare_offerings(linear_market)
        blended = next(
            r for r in results if r.offering == "conventional-transit"
        )
        assert blended.profit_capture == pytest.approx(0.0, abs=1e-9)
        assert blended.n_tiers == 1

    def test_taxonomy_ordering_on_distance_costs(self, linear_market):
        """§2.2's argument: ad-hoc offerings improve on blended rates, and
        demand+cost aware tiers improve on the ad-hoc offerings."""
        results = {r.offering: r for r in compare_offerings(linear_market)}
        blended = results["conventional-transit"].profit
        backplane = results["backplane-peering"].profit
        proposal = results["profit-weighted-3-tiers"].profit
        assert backplane > blended
        assert proposal > backplane

    def test_regional_offering_appears_with_region_classes(
        self, regional_market
    ):
        results = {r.offering for r in compare_offerings(regional_market)}
        assert "regional-pricing" in results

    def test_paid_peering_appears_with_type_classes(self, onnet_market):
        results = {r.offering: r for r in compare_offerings(onnet_market)}
        assert "paid-peering" in results
        # Two flat cost classes: paid peering is already optimal (Fig 13).
        assert results["paid-peering"].profit_capture == pytest.approx(
            1.0, abs=1e-6
        )

    def test_results_fields(self, linear_market):
        for result in compare_offerings(linear_market):
            assert result.n_tiers == len(result.tier_prices) or (
                result.n_tiers >= len(result.tier_prices)
            )
            assert result.profit > 0

    def test_works_under_logit(self, flows):
        market = Market(flows, LogitDemand(1.1, s0=0.2), LinearDistanceCost(0.2), 20.0)
        results = {r.offering: r for r in compare_offerings(market)}
        assert results["profit-weighted-3-tiers"].profit_capture > 0.5

    def test_render(self, linear_market):
        text = render_offerings(compare_offerings(linear_market))
        assert "conventional-transit" in text
        assert "capture" in text
