"""Tests for TierDesign: economics -> operable configuration (§5)."""

import numpy as np
import pytest

from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import AccountingError
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP


@pytest.fixture
def market():
    flows = FlowSet(
        demands_mbps=[800.0, 300.0, 120.0, 60.0, 20.0, 5.0],
        distances_miles=[2.0, 15.0, 60.0, 250.0, 900.0, 4000.0],
        dsts=[f"10.0.{i}.1" for i in range(6)],
    )
    return Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)


@pytest.fixture
def design(market):
    outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
    return TierDesign.from_outcome(market, outcome, provider_asn=64500)


class TestConstruction:
    def test_covers_all_destinations(self, design, market):
        assert len(design.tier_of_destination) == market.n_flows
        assert design.n_tiers <= 3

    def test_rates_match_outcome_prices(self, market):
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        design = TierDesign.from_outcome(market, outcome)
        for tier_index, members in enumerate(outcome.bundles, start=1):
            assert design.rate_for(tier_index) == pytest.approx(
                float(outcome.prices[members[0]])
            )

    def test_requires_destinations(self):
        flows = FlowSet(demands_mbps=[1.0, 2.0], distances_miles=[1.0, 2.0])
        market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 2)
        with pytest.raises(AccountingError, match="destination"):
            TierDesign.from_outcome(market, outcome)

    def test_explicit_destinations(self):
        flows = FlowSet(demands_mbps=[1.0, 2.0], distances_miles=[1.0, 200.0])
        market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 2)
        design = TierDesign.from_outcome(
            market, outcome, destinations=["10.0.0.1", "10.0.1.1"]
        )
        assert set(design.tier_of_destination) == {"10.0.0.1", "10.0.1.1"}

    def test_destination_count_validated(self, market):
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 2)
        with pytest.raises(AccountingError, match="destinations"):
            TierDesign.from_outcome(market, outcome, destinations=["10.0.0.1"])

    def test_duplicate_destination_across_tiers_rejected(self, market):
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        dsts = ["10.0.0.1"] * market.n_flows  # all flows same destination
        with pytest.raises(AccountingError, match="tiers"):
            TierDesign.from_outcome(market, outcome, destinations=dsts)

    def test_lookups_raise_for_unknown(self, design):
        with pytest.raises(AccountingError):
            design.tier_for("192.0.2.1")
        with pytest.raises(AccountingError):
            design.rate_for(99)

    def test_describe(self, design):
        text = design.describe()
        assert "tiers=" in text and "$" in text


class TestOperationalArtifacts:
    def test_routing_table_resolves_every_destination(self, design):
        rib = design.routing_table()
        for dst, tier in design.tier_of_destination.items():
            assert rib.tier_for(dst, provider_asn=64500) == tier

    def test_prefix_length_validated(self, design):
        with pytest.raises(AccountingError):
            design.routing_table(prefix_length=0)

    def test_link_accounting_wired(self, design):
        acct = design.link_accounting()
        dst = next(iter(design.tier_of_destination))
        tier = acct.send(dst, octets=1000)
        assert tier == design.tier_for(dst)

    def test_flow_accounting_end_to_end(self, design, market):
        window = 8.0
        acct = design.flow_accounting(window_seconds=window)
        # One record per destination carrying 1 Mbps.
        for i, dst in enumerate(market.flows.dsts):
            acct.ingest(
                NetFlowRecord(
                    key=FlowKey("172.16.0.9", dst, 40000 + i, 443, PROTO_TCP),
                    octets=1_000_000,
                    packets=1250,
                    first_ms=0,
                    last_ms=int(window * 1000) - 1,
                    router="EDGE",
                )
            )
        invoice = acct.invoice("customer", design.rates)
        expected = sum(design.rates[t] for t in design.tier_of_destination.values())
        assert invoice.total == pytest.approx(expected)

    def test_invoice_total_matches_designed_revenue(self, design, market):
        """Billing the calibrated demand at the designed rates yields the
        revenue the counterfactual promised."""
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        revenue_from_design = sum(
            float(np.sum(market.flows.demands[members]))
            * design.rate_for(tier_index)
            for tier_index, members in enumerate(outcome.bundles, start=1)
        )
        # Revenue at the counterfactual prices and *observed* demand:
        direct = float(np.sum(market.flows.demands * outcome.prices))
        assert revenue_from_design == pytest.approx(direct)
