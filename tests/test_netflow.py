"""Tests for the NetFlow substrate (records, sampling, dedup, aggregation)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.netflow.aggregation import aggregate_to_flowset
from repro.netflow.collector import FlowCollector
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP, PROTO_UDP
from repro.netflow.sampling import PacketSampler


def key(n=1, dst="2.0.0.9"):
    return FlowKey(
        src_addr=f"1.0.0.{n}",
        dst_addr=dst,
        src_port=40000 + n,
        dst_port=443,
        protocol=PROTO_TCP,
    )


def record(k, octets, router="R1", sampling=1, first=0, last=999):
    return NetFlowRecord(
        key=k,
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=first,
        last_ms=last,
        router=router,
        sampling_interval=sampling,
    )


class TestFlowKey:
    def test_valid(self):
        k = key()
        assert k.protocol == PROTO_TCP

    @pytest.mark.parametrize("port", [-1, 65536])
    def test_port_validated(self, port):
        with pytest.raises(DataError):
            FlowKey("1.1.1.1", "2.2.2.2", port, 80, PROTO_UDP)

    def test_protocol_validated(self):
        with pytest.raises(DataError):
            FlowKey("1.1.1.1", "2.2.2.2", 1, 80, 300)

    def test_keys_are_hashable_and_equal_by_value(self):
        assert key(1) == key(1)
        assert key(1) != key(2)
        assert len({key(1), key(1), key(2)}) == 2


class TestNetFlowRecord:
    def test_estimated_octets_scales_by_sampling(self):
        r = record(key(), octets=1000, sampling=100)
        assert r.estimated_octets == 100_000

    def test_mean_rate(self):
        # 1,000,000 bytes over 8 seconds = 1 Mbit/s.
        r = record(key(), octets=1_000_000, last=7999)
        assert r.mean_rate_mbps(8000) == pytest.approx(1.0)

    def test_mean_rate_window_validated(self):
        with pytest.raises(DataError):
            record(key(), 10).mean_rate_mbps(0)

    def test_time_order_validated(self):
        with pytest.raises(DataError):
            record(key(), 10, first=100, last=50)

    def test_negative_counters_rejected(self):
        with pytest.raises(DataError):
            NetFlowRecord(
                key=key(), octets=-1, packets=1, first_ms=0, last_ms=1, router="R"
            )

    def test_packets_without_octets_rejected(self):
        with pytest.raises(DataError):
            NetFlowRecord(
                key=key(), octets=0, packets=5, first_ms=0, last_ms=1, router="R"
            )

    def test_router_required(self):
        with pytest.raises(DataError):
            NetFlowRecord(
                key=key(), octets=1, packets=1, first_ms=0, last_ms=1, router=""
            )

    def test_sampling_interval_validated(self):
        with pytest.raises(DataError):
            record(key(), 10, sampling=0)


class TestPacketSampler:
    def test_unsampled_passthrough(self, rng):
        sampler = PacketSampler(1, rng)
        counters = sampler.sample(1000, 800_000)
        assert counters.packets == 1000
        assert counters.octets == 800_000

    def test_zero_packets(self, rng):
        counters = PacketSampler(100, rng).sample(0, 0)
        assert counters.packets == 0 and counters.octets == 0

    def test_estimator_is_nearly_unbiased(self, rng):
        sampler = PacketSampler(100, rng)
        true_packets, true_octets = 200_000, 160_000_000
        estimates = []
        for _ in range(40):
            counters = sampler.sample(true_packets, true_octets)
            estimates.append(sampler.estimate(counters)[1])
        assert np.mean(estimates) == pytest.approx(true_octets, rel=0.02)

    def test_sampled_counts_reasonable(self, rng):
        counters = PacketSampler(10, rng).sample(10_000, 8_000_000)
        assert 700 <= counters.packets <= 1300
        assert counters.sampling_interval == 10

    def test_validation(self, rng):
        with pytest.raises(DataError):
            PacketSampler(0, rng)
        with pytest.raises(DataError):
            PacketSampler(10, rng).sample(-1, 0)


class TestFlowCollector:
    def test_deduplicates_across_routers(self):
        # Same flow exported by three routers on its path: volume must be
        # counted once (the max per-router total), not three times.
        collector = FlowCollector()
        k = key()
        for router in ("R1", "R2", "R3"):
            collector.ingest(record(k, octets=1000, router=router))
        assert collector.deduplicated_octets()[k] == 1000
        assert collector.records_seen == 3
        assert len(collector) == 1

    def test_sums_within_router(self):
        collector = FlowCollector()
        k = key()
        collector.ingest(record(k, octets=600, router="R1", first=0, last=10))
        collector.ingest(record(k, octets=400, router="R1", first=11, last=20))
        assert collector.deduplicated_octets()[k] == 1000

    def test_takes_max_router_when_sampling_noise_differs(self):
        collector = FlowCollector()
        k = key()
        collector.ingest(record(k, octets=900, router="R1"))
        collector.ingest(record(k, octets=1100, router="R2"))
        assert collector.deduplicated_octets()[k] == 1100
        assert collector.entry_router(k) == "R2"

    def test_total_octets_sums_everything(self):
        collector = FlowCollector()
        k = key()
        collector.ingest(record(k, octets=900, router="R1"))
        collector.ingest(record(k, octets=1100, router="R2"))
        assert collector.total_octets()[k] == 2000

    def test_distinct_flows_kept_apart(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), octets=100))
        collector.ingest(record(key(2), octets=200))
        volumes = collector.deduplicated_octets()
        assert volumes[key(1)] == 100
        assert volumes[key(2)] == 200

    def test_routers_for(self):
        collector = FlowCollector()
        collector.ingest(record(key(), 10, router="R2"))
        collector.ingest(record(key(), 10, router="R1"))
        assert collector.routers_for(key()) == ["R1", "R2"]
        with pytest.raises(DataError):
            collector.routers_for(key(9))

    def test_time_span(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), 10, first=5, last=100))
        collector.ingest(record(key(2), 10, first=50, last=900))
        assert collector.time_span_ms() == (5, 900)

    def test_time_span_empty(self):
        with pytest.raises(DataError):
            FlowCollector().time_span_ms()

    def test_sampling_scales_in_dedup(self):
        collector = FlowCollector()
        collector.ingest(record(key(), octets=100, sampling=1000))
        assert collector.deduplicated_octets()[key()] == 100_000


class TestFlowCollectorDrain:
    """Time-based eviction added for the streaming windower."""

    def _loaded(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), octets=100, first=0, last=50))
        collector.ingest(record(key(1), octets=200, router="R2", first=0, last=60))
        collector.ingest(record(key(2), octets=300, first=100, last=150))
        collector.ingest(record(key(2), octets=400, first=160, last=260))
        return collector

    def test_drain_all(self):
        collector = self._loaded()
        drained = collector.drain()
        assert len(drained) == 4
        assert len(collector) == 0
        assert collector.deduplicated_octets() == {}
        # records_seen is a cumulative ingest counter, not a gauge.
        assert collector.records_seen == 4

    def test_drain_is_time_ordered(self):
        drained = self._loaded().drain()
        assert [r.last_ms for r in drained] == sorted(r.last_ms for r in drained)

    def test_time_cutoff_evicts_only_old_records(self):
        collector = self._loaded()
        drained = collector.drain(older_than_ms=100)
        assert {r.last_ms for r in drained} == {50, 60}
        # key(1)'s group is gone entirely; key(2) keeps both records.
        assert len(collector) == 1
        assert collector.deduplicated_octets() == {key(2): 700}

    def test_cutoff_splits_within_a_router_group(self):
        collector = self._loaded()
        drained = collector.drain(older_than_ms=160)
        assert {r.octets for r in drained} == {100, 200, 300}
        # The surviving record still dedups correctly on its own.
        assert collector.deduplicated_octets() == {key(2): 400}
        assert collector.routers_for(key(2)) == ["R1"]

    def test_dedup_semantics_survive_reingest(self):
        # Drain and re-ingest: per-router max semantics are unchanged.
        collector = self._loaded()
        drained = collector.drain()
        collector.ingest_many(drained)
        assert collector.deduplicated_octets() == {key(1): 200, key(2): 700}

    def test_drain_empty_collector(self):
        assert FlowCollector().drain() == []
        assert FlowCollector().drain(older_than_ms=10) == []


class TestAggregation:
    def test_rates_and_distances(self):
        collector = FlowCollector()
        # 10^6 bytes over a 8-second window -> 1 Mbps.
        collector.ingest(record(key(1, dst="2.0.0.1"), octets=1_000_000))
        collector.ingest(record(key(2, dst="2.0.0.2"), octets=2_000_000))
        distances = {"2.0.0.1": 10.0, "2.0.0.2": 500.0}
        flows = aggregate_to_flowset(
            collector,
            window_seconds=8.0,
            distance_fn=lambda k: distances[k.dst_addr],
        )
        assert len(flows) == 2
        by_dst = {dst: i for i, dst in enumerate(flows.dsts)}
        assert flows.demands[by_dst["2.0.0.1"]] == pytest.approx(1.0)
        assert flows.demands[by_dst["2.0.0.2"]] == pytest.approx(2.0)
        assert flows.distances[by_dst["2.0.0.2"]] == 500.0

    def test_region_fn_attached(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), octets=1_000_000))
        flows = aggregate_to_flowset(
            collector,
            window_seconds=1.0,
            distance_fn=lambda k: 5.0,
            region_fn=lambda k: "metro",
        )
        assert flows.regions == ("metro",)

    def test_min_demand_filter(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), octets=1_000_000))
        collector.ingest(record(key(2), octets=100))
        flows = aggregate_to_flowset(
            collector,
            window_seconds=8.0,
            distance_fn=lambda k: 1.0,
            min_demand_mbps=0.5,
        )
        assert len(flows) == 1

    def test_empty_collector_rejected(self):
        with pytest.raises(DataError):
            aggregate_to_flowset(
                FlowCollector(), window_seconds=1.0, distance_fn=lambda k: 1.0
            )

    def test_all_filtered_rejected(self):
        collector = FlowCollector()
        collector.ingest(record(key(1), octets=8))
        with pytest.raises(DataError, match="threshold"):
            aggregate_to_flowset(
                collector,
                window_seconds=1000.0,
                distance_fn=lambda k: 1.0,
                min_demand_mbps=1.0,
            )

    def test_window_validated(self):
        with pytest.raises(DataError):
            aggregate_to_flowset(
                FlowCollector(), window_seconds=0.0, distance_fn=lambda k: 1.0
            )
