"""Property-based tests for the extension modules.

Competition: equilibria exist, are Nash, and markups stay below monopoly.
Commitments: self-selection never leaves a customer worse off than
opting out, and menu profit responds sanely to cost.
Drift-free replay: a design scored against its own market has no regret.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commitments import CommitContract, CommitMarket
from repro.core.competition import Firm, LogitCompetition
from repro.core.logit import LogitDemand

valuation_arrays = st.lists(
    st.floats(min_value=5.0, max_value=40.0), min_size=2, max_size=8
).map(lambda xs: np.asarray(xs, dtype=float))


class TestCompetitionProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        v=valuation_arrays,
        data=st.data(),
        n_firms=st.integers(min_value=1, max_value=4),
        alpha=st.floats(min_value=0.3, max_value=3.0),
    )
    def test_equilibrium_exists_and_is_nash(self, v, data, n_firms, alpha):
        firms = []
        for k in range(n_firms):
            costs = data.draw(
                st.lists(
                    st.floats(min_value=0.5, max_value=10.0),
                    min_size=v.size,
                    max_size=v.size,
                ).map(lambda xs: np.asarray(xs, dtype=float))
            )
            quality = data.draw(st.floats(min_value=-2.0, max_value=2.0))
            firms.append(Firm(name=f"F{k}", costs=costs, quality=quality))
        market = LogitCompetition(v, firms, alpha=alpha)
        eq = market.equilibrium()
        assert eq.is_nash(tol=1e-5)
        total_share = sum(eq.share(f.name) for f in firms) + eq.outside_share()
        assert total_share == pytest.approx(1.0)
        for firm in firms:
            assert eq.profit(firm.name) >= 0.0
            assert eq.markup(firm.name) > 0.0

    @settings(deadline=None, max_examples=30)
    @given(
        v=valuation_arrays,
        data=st.data(),
        alpha=st.floats(min_value=0.5, max_value=2.5),
    )
    def test_more_competitors_never_raise_markups(self, v, data, alpha):
        costs = data.draw(
            st.lists(
                st.floats(min_value=0.5, max_value=8.0),
                min_size=v.size,
                max_size=v.size,
            ).map(lambda xs: np.asarray(xs, dtype=float))
        )
        mono = LogitDemand(alpha=alpha, s0=0.5).optimal_markup(v, costs)
        duo = LogitCompetition(
            v,
            [Firm("A", costs), Firm("B", costs.copy())],
            alpha=alpha,
        ).equilibrium()
        assert duo.markup("A") <= mono + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(v=valuation_arrays, alpha=st.floats(min_value=0.5, max_value=2.5))
    def test_symmetric_equilibrium_is_symmetric(self, v, alpha):
        costs = np.linspace(1.0, 4.0, v.size)
        eq = LogitCompetition(
            v,
            [Firm("A", costs), Firm("B", costs.copy()), Firm("C", costs.copy())],
            alpha=alpha,
        ).equilibrium()
        assert eq.profit("A") == pytest.approx(eq.profit("B"), rel=1e-6)
        assert eq.profit("B") == pytest.approx(eq.profit("C"), rel=1e-6)


class TestCommitmentProperties:
    @settings(deadline=None, max_examples=50)
    @given(
        valuations=st.lists(
            st.floats(min_value=0.2, max_value=60.0), min_size=1, max_size=20
        ),
        data=st.data(),
        alpha=st.floats(min_value=1.2, max_value=4.0),
        unit_cost=st.floats(min_value=0.2, max_value=5.0),
    )
    def test_selection_never_worse_than_opting_out(
        self, valuations, data, alpha, unit_cost
    ):
        market = CommitMarket(alpha=alpha, unit_cost=unit_cost)
        n_contracts = data.draw(st.integers(min_value=1, max_value=4))
        menu = [
            CommitContract(
                commit_mbps=data.draw(st.floats(min_value=0.0, max_value=200.0)),
                price_per_mbps=data.draw(
                    st.floats(min_value=0.2, max_value=30.0)
                ),
            )
            for _ in range(n_contracts)
        ]
        for choice in market.simulate(valuations, menu):
            assert choice.surplus >= -1e-12
            assert choice.payment >= 0.0
            if choice.contract_index is None:
                assert choice.usage_mbps == 0.0

    @settings(deadline=None, max_examples=30)
    @given(
        valuations=st.lists(
            st.floats(min_value=1.0, max_value=30.0), min_size=2, max_size=15
        ),
        alpha=st.floats(min_value=1.3, max_value=3.0),
    )
    def test_blended_baseline_profit_is_positive(self, valuations, alpha):
        market = CommitMarket(alpha=alpha, unit_cost=1.0)
        baseline = market.best_single_price(valuations)
        assert market.profit(valuations, [baseline]) > 0.0

    @settings(deadline=None, max_examples=30)
    @given(
        valuation=st.floats(min_value=1.0, max_value=30.0),
        alpha=st.floats(min_value=1.3, max_value=3.0),
        price=st.floats(min_value=0.5, max_value=10.0),
        commit_lo=st.floats(min_value=0.0, max_value=5.0),
        extra=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_surplus_weakly_decreasing_in_commit(
        self, valuation, alpha, price, commit_lo, extra
    ):
        market = CommitMarket(alpha=alpha, unit_cost=1.0)
        small = market.evaluate(
            valuation, CommitContract(commit_mbps=commit_lo, price_per_mbps=price)
        )
        big = market.evaluate(
            valuation,
            CommitContract(commit_mbps=commit_lo + extra, price_per_mbps=price),
        )
        assert big.surplus <= small.surplus + 1e-9
