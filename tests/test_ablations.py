"""Tests for the ablation drivers (small configurations)."""

import dataclasses

import pytest

from repro.experiments.ablations import (
    billing_ablation,
    granularity_ablation,
    optimal_search_ablation,
    weighting_ablation,
)
from repro.experiments.config import DEFAULT_CONFIG


class TestOptimalSearchAblation:
    def test_dp_matches_exhaustive(self):
        data = optimal_search_ablation(n_flows=7, n_trials=3, n_bundles=2)
        assert data["worst_relative_gap"] < 1e-9

    def test_reports_timing(self):
        data = optimal_search_ablation(n_flows=6, n_trials=2)
        assert data["time_exhaustive_s"] > 0
        assert data["time_dp_s"] > 0


class TestWeightingAblation:
    def test_shapes(self):
        data = weighting_ablation(rhos=(-0.5, 0.0), n_flows=40, seed=2)
        assert data["rhos"] == [-0.5, 0.0]
        for curve in data["capture"].values():
            assert len(curve) == 2

    def test_optimal_dominates(self):
        data = weighting_ablation(rhos=(0.0,), n_flows=40, seed=2)
        top = data["capture"]["optimal"][0]
        for name, curve in data["capture"].items():
            assert curve[0] <= top + 1e-9, name


class TestGranularityAblation:
    def test_capture_per_granularity(self):
        config = dataclasses.replace(DEFAULT_CONFIG, seed=1)
        data = granularity_ablation(flow_counts=(20, 40), config=config)
        assert len(data["capture"]) == 2
        assert all(0.0 <= c <= 1.0 for c in data["capture"])


class TestBillingAblation:
    def test_premium_at_least_one(self):
        data = billing_ablation(n_flows=20, peak_to_trough=2.0)
        assert data["premium"] >= 1.0
        assert data["per_flow_premium_min"] >= 1.0 - 1e-9

    def test_flat_traffic_has_tiny_premium(self):
        data = billing_ablation(n_flows=20, peak_to_trough=1.0)
        # Only the multiplicative noise separates p95 from the mean.
        assert data["premium"] == pytest.approx(1.0, abs=0.35)

    def test_burstier_traffic_pays_more(self):
        flat = billing_ablation(n_flows=20, peak_to_trough=1.5)
        bursty = billing_ablation(n_flows=20, peak_to_trough=4.0)
        assert bursty["premium"] > flat["premium"]
