"""Tests for tier-design drift evaluation."""

import numpy as np
import pytest

from repro.accounting.drift import evaluate_drift
from repro.accounting.tier_designer import TierDesign
from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import DestinationTypeCost, LinearDistanceCost
from repro.core.flow import FlowSet
from repro.core.market import Market
from repro.errors import AccountingError

P0 = 20.0


def make_flows(demands, distances, offset=0):
    return FlowSet(
        demands_mbps=demands,
        distances_miles=distances,
        dsts=[f"10.0.{(offset + i) // 250}.{(offset + i) % 250 + 1}" for i in range(len(demands))],
    )


@pytest.fixture
def base_flows(rng):
    return make_flows(
        rng.lognormal(3.0, 1.2, 40), rng.lognormal(3.5, 0.9, 40)
    )


@pytest.fixture
def design(base_flows):
    market = Market(base_flows, CEDDemand(1.1), LinearDistanceCost(0.2), P0)
    outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
    return TierDesign.from_outcome(market, outcome)


class TestNoDrift:
    def test_same_traffic_has_no_regret(self, design, base_flows):
        report = evaluate_drift(
            design, base_flows, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.unknown_destinations == 0
        assert report.missing_destinations == 0
        assert report.regret == pytest.approx(0.0, abs=1e-6)
        assert not report.should_retier()

    def test_captures_match_on_identical_traffic(self, design, base_flows):
        report = evaluate_drift(
            design, base_flows, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.stale_capture == pytest.approx(report.refreshed_capture)


class TestDrift:
    def test_uniform_growth_is_benign(self, design, base_flows):
        # All flows double: relative structure unchanged; stale tiers fine.
        grown = base_flows.replace(demands_mbps=2.0 * base_flows.demands)
        report = evaluate_drift(
            design, grown, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.capture_drop == pytest.approx(0.0, abs=0.02)
        assert not report.should_retier()

    def test_structural_drift_creates_regret(self, design, base_flows, rng):
        # Traffic inverts: cheap destinations shrink, expensive ones boom,
        # and distances reshuffle - the old cost-aligned tiers misprice.
        shuffled = make_flows(
            base_flows.demands[::-1],
            rng.permutation(base_flows.distances) * rng.uniform(0.2, 5.0, 40),
        )
        report = evaluate_drift(
            design, shuffled, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.regret > 0
        assert report.refreshed_capture > report.stale_capture

    def test_new_destinations_counted_and_priced_at_blended(
        self, design, base_flows, rng
    ):
        extra = make_flows(
            rng.lognormal(3.0, 1.0, 10), rng.lognormal(3.5, 0.9, 10), offset=500
        )
        combined = FlowSet(
            demands_mbps=np.concatenate((base_flows.demands, extra.demands)),
            distances_miles=np.concatenate(
                (base_flows.distances, extra.distances)
            ),
            dsts=list(base_flows.dsts) + list(extra.dsts),
        )
        report = evaluate_drift(
            design, combined, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.unknown_destinations == 10
        assert report.missing_destinations == 0

    def test_churned_destinations_counted(self, design, base_flows):
        shrunk = base_flows.subset(list(range(25)))
        report = evaluate_drift(
            design, shrunk, CEDDemand(1.1), LinearDistanceCost(0.2), P0
        )
        assert report.missing_destinations == 15
        assert report.unknown_destinations == 0


class TestValidation:
    def test_needs_destinations(self, design, rng):
        anonymous = FlowSet(
            demands_mbps=rng.lognormal(3.0, 1.0, 5),
            distances_miles=rng.lognormal(3.0, 0.5, 5),
        )
        with pytest.raises(AccountingError, match="destination"):
            evaluate_drift(
                design, anonymous, CEDDemand(1.1), LinearDistanceCost(0.2), P0
            )

    def test_splitting_cost_model_rejected(self, design, base_flows):
        with pytest.raises(AccountingError, match="non-splitting"):
            evaluate_drift(
                design,
                base_flows,
                CEDDemand(1.1),
                DestinationTypeCost(0.2),
                P0,
            )
