"""Tests for the tiered-pricing accounting substrate (paper §5)."""

import pytest

from repro.accounting.bgp import (
    Community,
    Route,
    RoutingTable,
    TIER_COMMUNITY_NAMESPACE,
    make_route,
    tag_routes_with_tiers,
)
from repro.accounting.billing import (
    Invoice,
    LineItem,
    average_mbps,
    build_invoice,
    percentile_mbps,
)
from repro.accounting.flow_based import FlowBasedAccounting
from repro.accounting.link_based import LinkBasedAccounting
from repro.errors import AccountingError, DataError
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP

ASN = 64500


def tagged_rib():
    """A RIB with three tiered routes: local /16, regional /12, default."""
    routes = [
        make_route("10.1.0.0/16", next_hop="LOCAL"),
        make_route("10.0.0.0/12", next_hop="REGION"),
        make_route("0.0.0.0/0", next_hop="WORLD"),
    ]
    tiers = {"LOCAL": 1, "REGION": 2, "WORLD": 3}
    tagged = tag_routes_with_tiers(routes, lambda r: tiers[r.next_hop], ASN)
    rib = RoutingTable()
    rib.insert_many(tagged)
    return rib


class TestCommunity:
    def test_str_roundtrip(self):
        c = Community(namespace=TIER_COMMUNITY_NAMESPACE, asn=ASN, value=2)
        assert Community.parse(str(c)) == c

    @pytest.mark.parametrize("text", ["tier:1", "tier:x:2", "a:b:c:d", ""])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(DataError):
            Community.parse(text)


class TestRoutesAndTagging:
    def test_make_route_validates_prefix(self):
        with pytest.raises(DataError):
            make_route("10.0.0.300/16", next_hop="X")

    def test_tagging_attaches_community(self):
        routes = tag_routes_with_tiers(
            [make_route("10.0.0.0/8", "X")], lambda r: 2, ASN
        )
        assert routes[0].tier(ASN) == 2
        assert routes[0].tier() == 2

    def test_tagging_is_idempotent(self):
        route = make_route("10.0.0.0/8", "X")
        once = tag_routes_with_tiers([route], lambda r: 1, ASN)[0]
        twice = tag_routes_with_tiers([once], lambda r: 1, ASN)[0]
        assert len(twice.communities) == 1

    def test_tier_filter_by_asn(self):
        route = make_route("10.0.0.0/8", "X")
        tagged = tag_routes_with_tiers([route], lambda r: 1, ASN)[0]
        assert tagged.tier(asn=65001) is None

    def test_untiered_route_reports_none(self):
        assert make_route("10.0.0.0/8", "X").tier() is None

    def test_invalid_tier_rejected(self):
        with pytest.raises(AccountingError):
            tag_routes_with_tiers([make_route("10.0.0.0/8", "X")], lambda r: 0, ASN)

    def test_route_with_community_preserves_as_path(self):
        route = make_route("10.0.0.0/8", "X", as_path=(ASN, 174))
        tagged = route.with_community(Community("tier", ASN, 1))
        assert tagged.as_path == (ASN, 174)


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        rib = tagged_rib()
        assert rib.lookup("10.1.2.3").next_hop == "LOCAL"
        assert rib.lookup("10.9.2.3").next_hop == "REGION"
        assert rib.lookup("8.8.8.8").next_hop == "WORLD"

    def test_tier_for(self):
        rib = tagged_rib()
        assert rib.tier_for("10.1.0.1") == 1
        assert rib.tier_for("10.8.0.1") == 2
        assert rib.tier_for("1.1.1.1") == 3

    def test_missing_route(self):
        rib = RoutingTable()
        rib.insert(make_route("10.0.0.0/8", "X"))
        assert rib.lookup("11.0.0.1") is None
        with pytest.raises(AccountingError, match="no route"):
            rib.tier_for("11.0.0.1")

    def test_untagged_route_is_a_billing_fault(self):
        rib = RoutingTable()
        rib.insert(make_route("10.0.0.0/8", "X"))
        with pytest.raises(AccountingError, match="tier"):
            rib.tier_for("10.0.0.1")

    def test_later_insert_wins(self):
        rib = RoutingTable()
        rib.insert(make_route("10.0.0.0/8", "OLD"))
        rib.insert(make_route("10.0.0.0/8", "NEW"))
        assert rib.lookup("10.0.0.1").next_hop == "NEW"
        assert len(rib) == 1

    def test_invalid_address(self):
        with pytest.raises(DataError):
            tagged_rib().lookup("not-an-ip")


class TestBilling:
    def test_percentile_discards_top_five_percent(self):
        # 100 samples 1..100: the 95th percentile sample is 95.
        samples = list(range(1, 101))
        assert percentile_mbps(samples, 95.0) == 95

    def test_percentile_small_sample(self):
        assert percentile_mbps([10.0], 95.0) == 10.0
        assert percentile_mbps([1.0, 100.0], 50.0) == 1.0

    def test_percentile_validation(self):
        with pytest.raises(AccountingError):
            percentile_mbps([], 95.0)
        with pytest.raises(AccountingError):
            percentile_mbps([1.0], 0.0)
        with pytest.raises(AccountingError):
            percentile_mbps([-1.0], 95.0)

    def test_average_mbps(self):
        # 1e6 bytes over 8 s = 1 Mbps.
        assert average_mbps(1_000_000, 8.0) == pytest.approx(1.0)
        with pytest.raises(AccountingError):
            average_mbps(1, 0.0)

    def test_invoice_total_and_render(self):
        invoice = build_invoice(
            "AS65001", {1: 100.0, 2: 50.0}, {1: 2.0, 2: 5.0}
        )
        assert invoice.total == pytest.approx(450.0)
        assert invoice.item_for(2).amount == pytest.approx(250.0)
        text = invoice.render()
        assert "AS65001" in text and "tier 1" in text

    def test_invoice_missing_rate(self):
        with pytest.raises(AccountingError, match="rate"):
            build_invoice("X", {1: 10.0}, {2: 1.0})

    def test_invoice_missing_tier_lookup(self):
        invoice = Invoice(customer="X", line_items=(LineItem(1, 1.0, 1.0),))
        with pytest.raises(AccountingError):
            invoice.item_for(9)


class TestLinkBasedAccounting:
    def make(self):
        return LinkBasedAccounting(tiers=[1, 2, 3], rib=tagged_rib())

    def test_traffic_steered_to_tier_links(self):
        acct = self.make()
        assert acct.send("10.1.0.5", octets=1000) == 1
        assert acct.send("10.9.0.5", octets=2000) == 2
        assert acct.send("9.9.9.9", octets=3000) == 3
        links = acct.links
        assert links[1].octets == 1000
        assert links[2].octets == 2000
        assert links[3].octets == 3000

    def test_missing_link_for_tier(self):
        acct = LinkBasedAccounting(tiers=[1, 2], rib=tagged_rib())
        with pytest.raises(AccountingError, match="no link"):
            acct.send("9.9.9.9", octets=10)  # tier 3, not provisioned

    def test_snmp_usage_samples(self):
        acct = self.make()
        acct.poll(0.0)
        acct.send("10.1.0.5", octets=300 * 125_000)  # 300 Mbit
        acct.poll(300.0)  # 1 Mbps over 5 minutes
        acct.send("10.1.0.5", octets=600 * 125_000)
        acct.poll(600.0)  # 2 Mbps
        usage = acct.usage_samples_mbps()
        assert usage[1] == pytest.approx([1.0, 2.0])
        assert usage[2] == pytest.approx([0.0, 0.0])

    def test_polls_must_advance(self):
        acct = self.make()
        acct.poll(10.0)
        with pytest.raises(AccountingError):
            acct.poll(10.0)

    def test_invoice_rates_by_tier(self):
        acct = self.make()
        acct.poll(0.0)
        acct.send("10.1.0.5", octets=300 * 125_000)
        acct.send("9.9.9.9", octets=600 * 125_000)
        acct.poll(300.0)
        invoice = acct.invoice("AS65001", {1: 10.0, 2: 6.0, 3: 2.0})
        assert invoice.item_for(1).billable_mbps == pytest.approx(1.0)
        assert invoice.item_for(3).billable_mbps == pytest.approx(2.0)
        assert invoice.total == pytest.approx(10.0 + 0.0 + 4.0)

    def test_constructor_validation(self):
        with pytest.raises(AccountingError):
            LinkBasedAccounting(tiers=[], rib=tagged_rib())
        with pytest.raises(AccountingError):
            LinkBasedAccounting(tiers=[1, 1], rib=tagged_rib())


def flow_record(dst, octets, router="EDGE", sampling=1):
    return NetFlowRecord(
        key=FlowKey("172.16.0.1", dst, 40000, 443, PROTO_TCP),
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=0,
        last_ms=999,
        router=router,
        sampling_interval=sampling,
    )


class TestFlowBasedAccounting:
    def test_usage_join(self):
        acct = FlowBasedAccounting(rib=tagged_rib(), window_seconds=8.0)
        acct.ingest(flow_record("10.1.0.5", 1_000_000))
        acct.ingest(flow_record("10.9.0.5", 2_000_000))
        acct.ingest(flow_record("8.8.8.8", 4_000_000))
        usage = acct.usage_by_tier()
        assert usage[1].octets == 1_000_000
        assert usage[2].octets == 2_000_000
        assert usage[3].mean_mbps(8.0) == pytest.approx(4.0)
        assert usage[1].n_flows == 1

    def test_sampling_scaled(self):
        acct = FlowBasedAccounting(rib=tagged_rib(), window_seconds=1.0)
        acct.ingest(flow_record("10.1.0.5", 1000, sampling=100))
        assert acct.usage_by_tier()[1].octets == 100_000

    def test_deduplication_across_routers(self):
        acct = FlowBasedAccounting(rib=tagged_rib(), window_seconds=1.0)
        acct.ingest(flow_record("10.1.0.5", 1000, router="R1"))
        acct.ingest(flow_record("10.1.0.5", 1000, router="R2"))
        assert acct.usage_by_tier()[1].octets == 1000

    def test_no_dedup_mode_sums(self):
        acct = FlowBasedAccounting(
            rib=tagged_rib(), window_seconds=1.0, deduplicate=False
        )
        acct.ingest(flow_record("10.1.0.5", 1000, router="R1"))
        acct.ingest(flow_record("10.1.0.5", 1000, router="R2"))
        assert acct.usage_by_tier()[1].octets == 2000

    def test_invoice(self):
        acct = FlowBasedAccounting(rib=tagged_rib(), window_seconds=8.0)
        acct.ingest(flow_record("10.1.0.5", 1_000_000))
        invoice = acct.invoice("AS65001", {1: 10.0})
        assert invoice.total == pytest.approx(10.0)

    def test_window_validated(self):
        with pytest.raises(AccountingError):
            FlowBasedAccounting(rib=tagged_rib(), window_seconds=0.0)


class TestSchemesAgree:
    def test_link_and_flow_accounting_bill_the_same_traffic_alike(self):
        """Integration: both §5.2 schemes yield the same mean-rate totals."""
        rib = tagged_rib()
        rates = {1: 10.0, 2: 6.0, 3: 2.0}
        window = 300.0
        traffic = [
            ("10.1.0.5", 300 * 125_000),
            ("10.9.0.5", 600 * 125_000),
            ("8.8.8.8", 150 * 125_000),
        ]

        link_acct = LinkBasedAccounting(tiers=[1, 2, 3], rib=rib)
        link_acct.poll(0.0)
        for dst, octets in traffic:
            link_acct.send(dst, octets)
        link_acct.poll(window)
        link_invoice = link_acct.invoice("C", rates)

        flow_acct = FlowBasedAccounting(rib=rib, window_seconds=window)
        for dst, octets in traffic:
            flow_acct.ingest(flow_record(dst, octets))
        flow_invoice = flow_acct.invoice("C", rates)

        assert link_invoice.total == pytest.approx(flow_invoice.total)
        for tier in (1, 2, 3):
            assert link_invoice.item_for(tier).billable_mbps == pytest.approx(
                flow_invoice.item_for(tier).billable_mbps
            )
