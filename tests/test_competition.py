"""Tests for the logit competition extension."""

import numpy as np
import pytest

from repro.core.competition import (
    CompetitionEquilibrium,
    Firm,
    LogitCompetition,
)
from repro.core.logit import LogitDemand
from repro.errors import ModelParameterError


@pytest.fixture
def valuations():
    return np.array([22.0, 21.0, 20.0, 19.5])


@pytest.fixture
def costs():
    return np.array([2.0, 3.0, 5.0, 9.0])


def duopoly(valuations, costs, bundles_a=None, bundles_b=None, quality_b=0.0):
    return LogitCompetition(
        valuations,
        firms=[
            Firm(name="A", costs=costs, bundles=bundles_a),
            Firm(name="B", costs=costs.copy(), quality=quality_b, bundles=bundles_b),
        ],
        alpha=1.1,
    )


class TestConstruction:
    def test_requires_firms(self, valuations):
        with pytest.raises(ModelParameterError):
            LogitCompetition(valuations, firms=[], alpha=1.0)

    def test_cost_shape_checked(self, valuations):
        with pytest.raises(ModelParameterError):
            LogitCompetition(
                valuations, firms=[Firm("A", np.array([1.0]))], alpha=1.0
            )

    def test_duplicate_names_rejected(self, valuations, costs):
        with pytest.raises(ModelParameterError, match="unique"):
            LogitCompetition(
                valuations,
                firms=[Firm("A", costs), Firm("A", costs)],
                alpha=1.0,
            )

    def test_bundles_must_partition(self, valuations, costs):
        with pytest.raises(ModelParameterError, match="partition"):
            Firm("A", costs, bundles=[np.array([0, 1])])

    def test_overlapping_bundles_rejected(self, costs):
        with pytest.raises(ModelParameterError, match="overlap"):
            Firm("A", costs, bundles=[np.array([0, 1]), np.array([1, 2, 3])])


class TestShares:
    def test_all_shares_sum_to_one(self, valuations, costs):
        market = duopoly(valuations, costs)
        prices = {"A": costs + 3.0, "B": costs + 4.0}
        shares = market.shares(prices)
        total = sum(s.sum() for s in shares.values()) + market.outside_share(
            prices
        )
        assert total == pytest.approx(1.0)

    def test_cheaper_firm_wins_share(self, valuations, costs):
        market = duopoly(valuations, costs)
        prices = {"A": costs + 2.0, "B": costs + 5.0}
        shares = market.shares(prices)
        assert shares["A"].sum() > shares["B"].sum()

    def test_quality_wins_share_at_equal_prices(self, valuations, costs):
        market = duopoly(valuations, costs, quality_b=1.0)
        prices = {"A": costs + 3.0, "B": costs + 3.0}
        shares = market.shares(prices)
        assert shares["B"].sum() > shares["A"].sum()


class TestMonopolyConsistency:
    def test_single_firm_matches_logit_demand_model(self, valuations, costs):
        """One firm must reproduce the paper's monopoly pricing exactly."""
        alpha = 1.3
        market = LogitCompetition(
            valuations, firms=[Firm("mono", costs)], alpha=alpha
        )
        response = market.best_response("mono", {"mono": costs + 1.0})
        mono = LogitDemand(alpha=alpha, s0=0.5)  # s0 unused by pricing
        expected = mono.optimal_prices(valuations, costs)
        assert response == pytest.approx(expected)

    def test_single_blended_firm_matches_uniform_price(self, valuations, costs):
        alpha = 1.3
        market = LogitCompetition(
            valuations,
            firms=[Firm("mono", costs, bundles=[np.arange(4)])],
            alpha=alpha,
        )
        response = market.best_response("mono", {"mono": costs + 1.0})
        mono = LogitDemand(alpha=alpha, s0=0.5)
        expected = mono.uniform_price(valuations, costs)
        assert response == pytest.approx(np.full(4, expected))


class TestBestResponse:
    def test_equal_markup_over_costs(self, valuations, costs):
        market = duopoly(valuations, costs)
        response = market.best_response("A", {"A": costs + 1, "B": costs + 3})
        markups = response - costs
        assert np.allclose(markups, markups[0])

    def test_response_is_locally_optimal(self, valuations, costs, rng):
        market = duopoly(valuations, costs)
        rival = {"B": costs + 3.0}
        response = market.best_response("A", {"A": costs + 1, **rival})
        best = market.profit("A", {"A": response, **rival})
        for _ in range(40):
            jitter = rng.normal(0.0, 0.4, 4)
            candidate = {"A": response + jitter, **rival}
            if np.any(candidate["A"] <= 0):
                continue
            assert market.profit("A", candidate) <= best + 1e-10

    def test_tiering_constraint_lowers_best_profit(self, valuations, costs):
        rival_prices = costs + 3.0
        free = duopoly(valuations, costs)
        blended = duopoly(valuations, costs, bundles_a=[np.arange(4)])
        free_profit = free.profit(
            "A",
            {
                "A": free.best_response("A", {"A": costs + 1, "B": rival_prices}),
                "B": rival_prices,
            },
        )
        blended_profit = blended.profit(
            "A",
            {
                "A": blended.best_response(
                    "A", {"A": costs + 1, "B": rival_prices}
                ),
                "B": rival_prices,
            },
        )
        assert blended_profit < free_profit


class TestEquilibrium:
    def test_converges_and_is_nash(self, valuations, costs):
        eq = duopoly(valuations, costs).equilibrium()
        assert isinstance(eq, CompetitionEquilibrium)
        assert eq.is_nash()
        assert eq.rounds < 5000

    def test_symmetric_firms_split_the_market(self, valuations, costs):
        eq = duopoly(valuations, costs).equilibrium()
        assert eq.share("A") == pytest.approx(eq.share("B"), rel=1e-6)
        assert eq.profit("A") == pytest.approx(eq.profit("B"), rel=1e-6)

    def test_competition_compresses_markups(self, valuations, costs):
        """Duopoly equilibrium markups are below the monopoly markup."""
        alpha = 1.1
        mono = LogitDemand(alpha=alpha, s0=0.5)
        monopoly_markup = mono.optimal_markup(valuations, costs)
        eq = duopoly(valuations, costs).equilibrium()
        assert eq.markup("A") < monopoly_markup
        assert eq.markup("B") < monopoly_markup

    def test_quality_advantage_pays(self, valuations, costs):
        eq = duopoly(valuations, costs, quality_b=1.5).equilibrium()
        assert eq.share("B") > eq.share("A")
        assert eq.profit("B") > eq.profit("A")

    def test_unilateral_tiering_beats_blended_rival(self, valuations, costs):
        """The §2.2 story under explicit competition: the ISP that tiers
        out-earns an otherwise identical blended-rate rival."""
        eq = duopoly(
            valuations,
            costs,
            bundles_a=None,                # A prices per flow
            bundles_b=[np.arange(4)],      # B sells one blended rate
        ).equilibrium()
        assert eq.profit("A") > eq.profit("B")
        assert eq.share("A") > eq.share("B")

    def test_both_tiering_is_symmetric_again(self, valuations, costs):
        eq = duopoly(
            valuations,
            costs,
            bundles_a=[np.array([0, 1]), np.array([2, 3])],
            bundles_b=[np.array([0, 1]), np.array([2, 3])],
        ).equilibrium()
        assert eq.profit("A") == pytest.approx(eq.profit("B"), rel=1e-6)

    def test_three_firm_markets_converge(self, valuations, costs):
        market = LogitCompetition(
            valuations,
            firms=[
                Firm("A", costs),
                Firm("B", costs * 1.1),
                Firm("C", costs * 0.9),
            ],
            alpha=1.1,
        )
        eq = market.equilibrium()
        assert eq.is_nash()
        # The lowest-cost firm earns the most.
        assert eq.profit("C") > eq.profit("A") > eq.profit("B")
