"""Tests for the linear demand family (extension)."""

import numpy as np
import pytest

from repro.core.bundling import OptimalBundling, ProfitWeightedBundling
from repro.core.cost import LinearDistanceCost
from repro.core.linear import LinearDemand
from repro.core.market import Market
from repro.errors import CalibrationError, ModelParameterError


@pytest.fixture
def model():
    return LinearDemand(kappa=1.5)


@pytest.fixture
def fitted(model):
    q = np.array([10.0, 4.0, 1.0])
    f = np.array([1.0, 3.0, 6.0])
    p0 = 20.0
    v = model.fit_valuations(q, p0)
    gamma = model.fit_gamma(v, f, p0)
    return {"q": q, "v": v, "c": gamma * f, "p0": p0}


class TestConstruction:
    @pytest.mark.parametrize("kappa", [1.0, 2.0, 0.5, 3.0])
    def test_kappa_range(self, kappa):
        with pytest.raises(ModelParameterError, match="kappa"):
            LinearDemand(kappa=kappa)

    def test_must_fit_before_pricing(self, model):
        with pytest.raises(CalibrationError, match="fit"):
            model.optimal_prices(np.array([1.0]), np.array([0.5]))


class TestFitting:
    def test_demand_reproduced_at_p0(self, model, fitted):
        q = model.quantities(fitted["v"], np.full(3, fitted["p0"]))
        assert q == pytest.approx(fitted["q"])

    def test_demand_zero_at_choke(self, model, fitted):
        choke = model.choke_price
        assert choke == pytest.approx(1.5 * 20.0)
        q = model.quantities(fitted["v"], np.full(3, choke))
        assert q == pytest.approx(np.zeros(3), abs=1e-12)

    def test_blended_rate_is_optimal_after_calibration(self, model, fitted):
        assert model.uniform_price(fitted["v"], fitted["c"]) == pytest.approx(
            fitted["p0"]
        )
        best = model.profit(fitted["v"], fitted["c"], np.full(3, fitted["p0"]))
        for p in np.linspace(5.0, 29.9, 120):
            assert model.profit(fitted["v"], fitted["c"], np.full(3, p)) <= (
                best + 1e-9
            )

    def test_gamma_positive(self, fitted):
        assert np.all(fitted["c"] > 0)


class TestPricing:
    def test_halfway_to_choke(self, model, fitted):
        p = model.optimal_prices(fitted["v"], fitted["c"])
        assert p == pytest.approx((model.choke_price + fitted["c"]) / 2.0)

    def test_per_flow_optimum_verified_on_grid(self, model, fitted):
        p_star = model.optimal_prices(fitted["v"], fitted["c"])
        for i in range(3):
            vi = fitted["v"][i : i + 1]
            ci = fitted["c"][i : i + 1]
            best = model.profit(vi, ci, p_star[i : i + 1])
            for p in np.linspace(1.0, model.choke_price - 1e-6, 200):
                assert model.profit(vi, ci, np.array([p])) <= best + 1e-9

    def test_unprofitable_flow_prices_out(self, model):
        model.fit_valuations(np.array([5.0, 5.0]), 20.0)
        costs = np.array([5.0, 40.0])  # second exceeds the 30 choke
        v = model.fit_valuations(np.array([5.0, 5.0]), 20.0)
        prices = model.optimal_prices(v, costs)
        q = model.quantities(v, prices)
        assert q[1] == 0.0
        assert model.profit(v[1:], costs[1:], prices[1:]) == 0.0

    def test_potential_profit_formula(self, model, fitted):
        pi = model.potential_profits(fitted["v"], fitted["c"])
        direct = np.array(
            [
                model.profit(
                    fitted["v"][i : i + 1],
                    fitted["c"][i : i + 1],
                    model.optimal_prices(fitted["v"], fitted["c"])[i : i + 1],
                )
                for i in range(3)
            ]
        )
        assert pi == pytest.approx(direct)


class TestSurplus:
    def test_triangle_area(self, model, fitted):
        # CS at P0 per flow: q^2/(2b); check against a numeric integral.
        prices = np.full(3, fitted["p0"])
        direct = model.consumer_surplus(fitted["v"], prices)
        # Reference: integrate total demand over price up to the choke.
        grid = np.linspace(fitted["p0"], model.choke_price, 40_000)
        totals = [
            model.quantities(fitted["v"], np.full(3, g)).sum() for g in grid
        ]
        numeric = np.trapezoid(totals, grid)
        assert direct == pytest.approx(numeric, rel=1e-4)

    def test_surplus_decreases_with_price(self, model, fitted):
        low = model.consumer_surplus(fitted["v"], np.full(3, 10.0))
        high = model.consumer_surplus(fitted["v"], np.full(3, 25.0))
        assert high < low


class TestBundleObjective:
    def test_slice_matches_direct_bundle_profit(self, model, fitted):
        objective = model.bundle_objective(fitted["v"], fitted["c"])
        for i in range(3):
            for j in range(i + 1, 4):
                members = np.arange(i, j)
                price = model.uniform_price(
                    fitted["v"][members], fitted["c"][members]
                )
                direct = model.profit(
                    fitted["v"][members],
                    fitted["c"][members],
                    np.full(members.size, price),
                )
                assert objective.slice_score(i, j) == pytest.approx(direct)


class TestMarketIntegration:
    def test_full_pipeline_with_linear_demand(self, medium_flows):
        market = Market(
            medium_flows,
            LinearDemand(kappa=1.5),
            LinearDistanceCost(theta=0.2),
            blended_rate=20.0,
        )
        assert market.quantities(market.blended_prices()) == pytest.approx(
            medium_flows.demands
        )
        assert market.max_profit() >= market.blended_profit()
        outcome = market.tiered_outcome(OptimalBundling(), 3)
        assert 0.0 <= outcome.profit_capture <= 1.0 + 1e-9
        assert outcome.profit_capture > 0.5

    def test_three_families_agree_on_the_headline(self, medium_flows):
        """3 tiers capture most of the gap under CED, logit, AND linear."""
        from repro.core.ced import CEDDemand
        from repro.core.logit import LogitDemand

        for demand in (
            CEDDemand(1.1),
            LogitDemand(1.1, s0=0.2),
            LinearDemand(kappa=1.5),
        ):
            market = Market(
                medium_flows, demand, LinearDistanceCost(0.2), blended_rate=20.0
            )
            outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
            assert outcome.profit_capture > 0.5, demand.name

    def test_capture_monotone_for_optimal(self, medium_flows):
        market = Market(
            medium_flows,
            LinearDemand(kappa=1.3),
            LinearDistanceCost(theta=0.2),
            blended_rate=20.0,
        )
        curve = [
            market.tiered_outcome(OptimalBundling(), b).profit_capture
            for b in (1, 2, 3, 4)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert curve[0] == pytest.approx(0.0, abs=1e-9)
