"""End-to-end integration: measure -> model -> tier -> account -> bill.

This exercises the full production loop a transit ISP would run with this
library:

1. generate a synthetic network trace (topology + sampled NetFlow);
2. collect/deduplicate/aggregate it into a flow set (§4.1.1);
3. calibrate a market and design tiers with profit-weighted bundling (§4);
4. check the counterfactual economics are consistent; and
5. drive the §5 accounting machinery with the designed tiers.
"""

import ipaddress

import numpy as np
import pytest

from repro.accounting.bgp import RoutingTable, make_route, tag_routes_with_tiers
from repro.accounting.flow_based import FlowBasedAccounting
from repro.core.bundling import OptimalBundling, ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.synth.trace import generate_network_trace

ASN = 64500


@pytest.fixture(scope="module")
def trace():
    return generate_network_trace("eu_isp", n_flows=80, seed=21)


@pytest.fixture(scope="module")
def flows(trace):
    return trace.to_flowset()


class TestTraceToMarket:
    def test_flowset_feeds_market(self, flows):
        market = Market(
            flows, CEDDemand(1.1), LinearDistanceCost(0.2), blended_rate=20.0
        )
        assert market.n_flows == len(flows)
        assert market.gamma > 0

    @pytest.mark.parametrize("family", ["ced", "logit"])
    def test_three_tiers_capture_most_profit_on_measured_data(
        self, flows, family
    ):
        model = (
            CEDDemand(1.1) if family == "ced" else LogitDemand(1.1, s0=0.2)
        )
        market = Market(
            flows, model, LinearDistanceCost(0.2), blended_rate=20.0
        )
        outcome = market.tiered_outcome(OptimalBundling(), 3)
        assert outcome.profit_capture > 0.7

    def test_measured_demand_matches_ground_truth(self, trace, flows):
        truth = sum(f.demand_mbps for f in trace.ground_truth)
        assert flows.demands.sum() == pytest.approx(truth, rel=0.1)


class TestMarketToAccounting:
    @pytest.fixture(scope="class")
    def designed(self, flows):
        """Design three tiers on the measured flows."""
        market = Market(
            flows, CEDDemand(1.1), LinearDistanceCost(0.2), blended_rate=20.0
        )
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        return market, outcome

    def test_tier_prices_feed_billing(self, designed, flows, trace):
        market, outcome = designed
        # Build a RIB: one /32 route per destination, tier-tagged from the
        # designed bundling.
        tier_of_dst = {}
        for tier_index, members in enumerate(outcome.bundles, start=1):
            for i in members:
                tier_of_dst[flows.dsts[int(i)]] = tier_index
        routes = [
            make_route(f"{dst}/32", next_hop="UPSTREAM")
            for dst in tier_of_dst
        ]
        tagged = tag_routes_with_tiers(
            routes,
            lambda r: tier_of_dst[str(r.prefix.network_address)],
            ASN,
        )
        rib = RoutingTable()
        rib.insert_many(tagged)

        # Replay the trace into flow-based accounting.
        acct = FlowBasedAccounting(
            rib=rib,
            window_seconds=trace.duration_seconds,
            provider_asn=ASN,
        )
        acct.ingest_many(
            r for r in trace.records if r.key.dst_addr in tier_of_dst
        )
        rates = {
            tier_index: float(outcome.prices[members[0]])
            for tier_index, members in enumerate(outcome.bundles, start=1)
        }
        invoice = acct.invoice("customer-1", rates)

        # The invoice must bill roughly the observed demand at the
        # designed prices: sum over tiers of (tier demand at P0) * price.
        expected = 0.0
        for tier_index, members in enumerate(outcome.bundles, start=1):
            tier_demand = float(np.sum(flows.demands[members]))
            expected += tier_demand * rates[tier_index]
        assert invoice.total == pytest.approx(expected, rel=0.05)

    def test_all_destinations_resolve_to_exactly_one_tier(self, designed, flows):
        _, outcome = designed
        seen = {}
        for tier_index, members in enumerate(outcome.bundles, start=1):
            for i in members:
                dst = flows.dsts[int(i)]
                assert dst not in seen or seen[dst] == tier_index
                seen[dst] = tier_index
        assert len(seen) <= len(flows)

    def test_designed_rates_are_valid_prefixes(self, flows):
        for dst in flows.dsts:
            ipaddress.IPv4Address(dst)  # raises if malformed


class TestCrossModelConsistency:
    def test_ced_and_logit_rank_strategies_consistently(self, flows):
        """Both demand families agree on the broad strategy ordering."""
        rankings = {}
        for name, model in (
            ("ced", CEDDemand(1.1)),
            ("logit", LogitDemand(1.1, s0=0.2)),
        ):
            market = Market(
                flows, model, LinearDistanceCost(0.2), blended_rate=20.0
            )
            optimal = market.tiered_outcome(OptimalBundling(), 3).profit_capture
            profitw = market.tiered_outcome(
                ProfitWeightedBundling(), 3
            ).profit_capture
            rankings[name] = (optimal, profitw)
        for optimal, profitw in rankings.values():
            assert optimal >= profitw - 1e-9
            assert profitw > 0.4
