"""Tests for the unified configuration API: the explicit > CLI > env >
default precedence chain, env parsing, validation, and the deprecated
spelling shims."""

import argparse
import dataclasses
import os

import pytest

from repro.config import (
    ObsConfig,
    RuntimeConfig,
    ServeConfig,
    StreamConfig,
)
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.errors import ConfigurationError


def namespace(**attrs):
    return argparse.Namespace(**attrs)


class TestPrecedenceChain:
    def test_default_when_nothing_given(self):
        assert RuntimeConfig.resolve().jobs is None
        assert ServeConfig.resolve().workers == 2

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert RuntimeConfig.resolve().jobs == 6

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        cfg = RuntimeConfig.resolve(cli=namespace(jobs=3))
        assert cfg.jobs == 3

    def test_explicit_beats_cli_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        cfg = RuntimeConfig.resolve(cli=namespace(jobs=3), jobs=1)
        assert cfg.jobs == 1

    def test_none_explicit_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert RuntimeConfig.resolve(jobs=None).jobs == 6

    def test_none_cli_attribute_falls_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "5")
        cfg = ServeConfig.resolve(cli=namespace(workers=None))
        assert cfg.workers == 5

    def test_empty_env_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert RuntimeConfig.resolve().jobs is None

    def test_unknown_explicit_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="threads"):
            RuntimeConfig.resolve(threads=4)


class TestEnvParsing:
    def test_garbage_jobs_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS.*'auto'"):
            RuntimeConfig.resolve()

    def test_garbage_float_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT_MS", "soon")
        with pytest.raises(
            ConfigurationError, match="REPRO_SERVE_TIMEOUT_MS"
        ):
            ServeConfig.resolve()

    def test_no_cache_env_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert RuntimeConfig.resolve().cache is False

    def test_no_cache_cli_flag(self):
        assert RuntimeConfig.resolve(cli=namespace(no_cache=True)).cache is False
        assert RuntimeConfig.resolve(cli=namespace(no_cache=False)).cache is True

    def test_trace_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/t.jsonl")
        cfg = ObsConfig.resolve()
        assert cfg.trace == "/tmp/t.jsonl"
        assert cfg.enabled
        assert not ObsConfig().enabled

    def test_stream_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_WINDOW_MS", "120000")
        monkeypatch.setenv("REPRO_STREAM_DRIFT", "0.25")
        cfg = StreamConfig.resolve()
        assert cfg.window_ms == 120_000
        assert cfg.drift_threshold == 0.25


class TestRuntimeConfig:
    def test_worker_count_rules(self):
        assert RuntimeConfig().worker_count() == 1
        assert RuntimeConfig(jobs=3).worker_count() == 3
        assert RuntimeConfig(jobs=0).worker_count() == (os.cpu_count() or 1)
        assert RuntimeConfig(jobs=-1).worker_count() == (os.cpu_count() or 1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RuntimeConfig().jobs = 4


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ServeConfig(workers=0)
        with pytest.raises(ConfigurationError, match="queue_depth"):
            ServeConfig(queue_depth=0)
        with pytest.raises(ConfigurationError, match="timeout_ms"):
            ServeConfig(timeout_ms=0)
        with pytest.raises(ConfigurationError, match="max_batch"):
            ServeConfig(max_batch=0)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "17")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "9")
        cfg = ServeConfig.resolve()
        assert cfg.queue_depth == 17
        assert cfg.max_batch == 9


class TestStreamConfig:
    def test_importable_from_both_paths(self):
        from repro.stream import StreamConfig as via_stream
        from repro.stream.pipeline import StreamConfig as via_pipeline

        assert via_stream is StreamConfig
        assert via_pipeline is StreamConfig

    def test_digest_tracks_settings_and_models(self):
        demand, cost = CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2)
        base = StreamConfig().digest(demand, cost)
        assert base == StreamConfig().digest(demand, cost)
        assert base != StreamConfig(window_ms=1).digest(demand, cost)
        assert base != StreamConfig().digest(CEDDemand(alpha=1.3), cost)


class TestDeprecatedSpellings:
    def test_figure_workers_alias_maps_to_jobs(self):
        from repro.cli import _apply_flag_aliases, build_parser

        args = build_parser().parse_args(["figure", "14", "--workers", "3"])
        with pytest.warns(DeprecationWarning, match=r"^repro figure --workers"):
            _apply_flag_aliases(args)
        assert args.jobs == 3

    def test_canonical_jobs_wins_over_alias(self):
        from repro.cli import _apply_flag_aliases, build_parser

        args = build_parser().parse_args(
            ["figure", "14", "--jobs", "2", "--workers", "5"]
        )
        with pytest.warns(DeprecationWarning):
            _apply_flag_aliases(args)
        assert args.jobs == 2

    def test_serve_jobs_alias_maps_to_workers(self):
        from repro.cli import _apply_flag_aliases, build_parser

        args = build_parser().parse_args(["serve", "eu_isp", "--jobs", "4"])
        with pytest.warns(DeprecationWarning, match=r"^repro serve --jobs"):
            _apply_flag_aliases(args)
        assert args.workers == 4

    def test_quote_server_legacy_kwargs_warn(self):
        from repro.serve import QuoteEngine, QuoteServer, SnapshotRegistry

        engine = QuoteEngine(
            SnapshotRegistry(), LinearDistanceCost(theta=0.2)
        )
        with pytest.warns(DeprecationWarning, match=r"^repro\.serve"):
            server = QuoteServer(engine, workers=3)
        assert server.config == ServeConfig(workers=3)

    def test_config_object_bypasses_the_shim(self, recwarn):
        from repro.serve import QuoteEngine, QuoteServer, SnapshotRegistry

        engine = QuoteEngine(
            SnapshotRegistry(), LinearDistanceCost(theta=0.2)
        )
        QuoteServer(engine, ServeConfig(workers=1))
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
