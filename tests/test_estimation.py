"""Tests for demand-parameter estimation from price changes."""

import numpy as np
import pytest

from repro.core.ced import CEDDemand
from repro.core.estimation import (
    ElasticityEstimate,
    PriceSnapshot,
    estimate_ced_alpha,
    estimate_logit_alpha,
    implied_outside_share,
    predicted_demand_change,
)
from repro.core.logit import LogitDemand
from repro.errors import CalibrationError, ModelParameterError


class TestPriceSnapshot:
    def test_validation(self):
        with pytest.raises(ModelParameterError):
            PriceSnapshot(price=0.0, demands=np.array([1.0]))
        with pytest.raises(ModelParameterError):
            PriceSnapshot(price=1.0, demands=np.array([]))
        with pytest.raises(ModelParameterError):
            PriceSnapshot(price=1.0, demands=np.array([1.0, 0.0]))


class TestCEDEstimation:
    def make_snapshots(self, alpha, p_before=20.0, p_after=15.0, noise=0.0, n=50):
        rng = np.random.default_rng(4)
        model = CEDDemand(alpha)
        valuations = rng.lognormal(3.0, 0.6, n)
        q_before = model.quantities(valuations, np.full(n, p_before))
        q_after = model.quantities(valuations, np.full(n, p_after))
        if noise:
            q_before = q_before * rng.lognormal(0, noise, n)
            q_after = q_after * rng.lognormal(0, noise, n)
        return (
            PriceSnapshot(p_before, q_before),
            PriceSnapshot(p_after, q_after),
        )

    @pytest.mark.parametrize("alpha", [1.1, 2.0, 4.0])
    def test_exact_recovery_without_noise(self, alpha):
        before, after = self.make_snapshots(alpha)
        estimate = estimate_ced_alpha(before, after)
        assert estimate.alpha == pytest.approx(alpha, rel=1e-9)
        assert estimate.dispersion == pytest.approx(0.0, abs=1e-9)
        assert estimate.homogeneous

    def test_recovery_under_noise(self):
        before, after = self.make_snapshots(1.5, noise=0.1)
        estimate = estimate_ced_alpha(before, after)
        assert estimate.alpha == pytest.approx(1.5, rel=0.25)

    def test_price_increase_direction_irrelevant(self):
        before, after = self.make_snapshots(2.0, p_before=10.0, p_after=25.0)
        assert estimate_ced_alpha(before, after).alpha == pytest.approx(2.0)

    def test_heterogeneous_flows_flagged(self):
        rng = np.random.default_rng(1)
        n = 40
        alphas = np.where(np.arange(n) % 2 == 0, 1.2, 6.0)
        valuations = rng.lognormal(3.0, 0.3, n)
        q_before = (valuations / 20.0) ** alphas
        q_after = (valuations / 12.0) ** alphas
        estimate = estimate_ced_alpha(
            PriceSnapshot(20.0, q_before), PriceSnapshot(12.0, q_after)
        )
        assert not estimate.homogeneous

    def test_same_price_unidentifiable(self):
        before, _ = self.make_snapshots(2.0)
        with pytest.raises(CalibrationError, match="unidentifiable"):
            estimate_ced_alpha(before, before)

    def test_mismatched_flows_rejected(self):
        before, after = self.make_snapshots(2.0)
        truncated = PriceSnapshot(after.price, after.demands[:-1])
        with pytest.raises(CalibrationError, match="different flow sets"):
            estimate_ced_alpha(before, truncated)

    def test_growth_dominated_data_rejected(self):
        # Demand that rose when price rose cannot identify an elasticity.
        before = PriceSnapshot(10.0, np.array([1.0, 2.0, 3.0]))
        after = PriceSnapshot(15.0, np.array([2.0, 4.0, 6.0]))
        with pytest.raises(CalibrationError, match="growth"):
            estimate_ced_alpha(before, after)


class TestLogitEstimation:
    def make_snapshots(self, alpha, s0=0.3, p_before=20.0, p_after=16.0, n=30):
        rng = np.random.default_rng(7)
        model = LogitDemand(alpha=alpha, s0=s0)
        demands = rng.lognormal(2.0, 0.8, n)
        valuations = model.fit_valuations(demands, p_before)
        population = model.population(demands)
        q_before = population * model.shares(valuations, np.full(n, p_before))
        q_after = population * model.shares(valuations, np.full(n, p_after))
        return (
            PriceSnapshot(p_before, q_before),
            PriceSnapshot(p_after, q_after),
            population,
        )

    @pytest.mark.parametrize("alpha", [0.7, 1.1, 2.5])
    def test_exact_recovery(self, alpha):
        before, after, population = self.make_snapshots(alpha)
        estimate = estimate_logit_alpha(before, after, population)
        assert estimate.alpha == pytest.approx(alpha, rel=1e-9)
        assert estimate.homogeneous

    def test_population_must_exceed_demand(self):
        before, after, _ = self.make_snapshots(1.1)
        with pytest.raises(CalibrationError, match="population"):
            estimate_logit_alpha(before, after, before.demands.sum())

    def test_implied_outside_share(self):
        before, _, population = self.make_snapshots(1.1, s0=0.3)
        assert implied_outside_share(before.demands, population) == (
            pytest.approx(0.3)
        )
        with pytest.raises(CalibrationError):
            implied_outside_share(before.demands, 1.0)


class TestPlanningHelper:
    def test_thirty_percent_cut_at_paper_alpha(self):
        multiplier = predicted_demand_change(1.1, 20.0, 14.0)
        assert multiplier == pytest.approx((20.0 / 14.0) ** 1.1)
        assert 1.4 < multiplier < 1.6

    def test_validation(self):
        with pytest.raises(ModelParameterError):
            predicted_demand_change(0.0, 10.0, 5.0)
        with pytest.raises(ModelParameterError):
            predicted_demand_change(1.0, -1.0, 5.0)


class TestEstimateObject:
    def test_fields(self):
        estimate = ElasticityEstimate(
            alpha=2.0, per_flow=np.array([1.9, 2.0, 2.1]), dispersion=0.1, n_flows=3
        )
        assert estimate.homogeneous
        estimate = ElasticityEstimate(
            alpha=2.0, per_flow=np.array([0.5, 2.0, 8.0]), dispersion=2.0, n_flows=3
        )
        assert not estimate.homogeneous
