"""Tests for the synthetic-data substrate (datasets and trace pipeline)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.synth.datasets import (
    DATASET_NAMES,
    DATASETS,
    dataset_spec,
    load_dataset,
    table1_row,
)
from repro.synth.distributions import (
    lognormal_sigma_for_cv,
    sample_lognormal,
    weighted_cv,
    weighted_mean,
)
from repro.synth.trace import generate_network_trace


class TestDistributions:
    def test_sigma_for_cv_inverts(self, rng):
        for cv in (0.5, 1.0, 2.0):
            sigma = lognormal_sigma_for_cv(cv)
            sample = rng.lognormal(0.0, sigma, 200_000)
            assert np.std(sample) / np.mean(sample) == pytest.approx(cv, rel=0.1)
        # Heavy tails (Internet2's CV=4.5) converge slowly; only check the
        # order of magnitude on a finite sample.
        sigma = lognormal_sigma_for_cv(4.5)
        sample = rng.lognormal(0.0, sigma, 400_000)
        assert 2.5 < np.std(sample) / np.mean(sample) < 7.0

    def test_sample_lognormal_mean(self, rng):
        sample = sample_lognormal(rng, 200_000, mean=7.0, cv=0.8)
        assert sample.mean() == pytest.approx(7.0, rel=0.05)

    def test_sample_lognormal_validation(self, rng):
        with pytest.raises(DataError):
            sample_lognormal(rng, 0, mean=1.0, cv=1.0)
        with pytest.raises(DataError):
            sample_lognormal(rng, 5, mean=-1.0, cv=1.0)
        with pytest.raises(DataError):
            lognormal_sigma_for_cv(0.0)

    def test_weighted_mean_and_cv(self):
        values = np.array([1.0, 3.0])
        weights = np.array([3.0, 1.0])
        assert weighted_mean(values, weights) == pytest.approx(1.5)
        assert weighted_mean(values) == pytest.approx(2.0)
        assert weighted_cv(values) == pytest.approx(0.5)


class TestDatasetSpecs:
    def test_three_datasets(self):
        assert set(DATASET_NAMES) == {"eu_isp", "cdn", "internet2"}
        assert set(DATASETS) == set(DATASET_NAMES)

    def test_spec_lookup(self):
        spec = dataset_spec("eu_isp")
        assert spec.w_avg_distance_miles == 54.0
        assert spec.aggregate_gbps == 37.0

    def test_unknown_dataset(self):
        with pytest.raises(DataError, match="unknown dataset"):
            dataset_spec("att")

    def test_paper_table1_values_encoded(self):
        cdn = dataset_spec("cdn")
        assert (cdn.w_avg_distance_miles, cdn.distance_cv) == (1988.0, 0.59)
        assert (cdn.aggregate_gbps, cdn.demand_cv) == (96.0, 2.28)
        i2 = dataset_spec("internet2")
        assert (i2.aggregate_gbps, i2.demand_cv) == (4.0, 4.53)


class TestLoadDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_table1_statistics_match_exactly(self, name):
        spec = dataset_spec(name)
        flows = load_dataset(name, n_flows=150, seed=3)
        row = flows.table1_row()
        assert row["w_avg_distance_miles"] == pytest.approx(
            spec.w_avg_distance_miles, rel=1e-6
        )
        assert row["distance_cv"] == pytest.approx(spec.distance_cv, rel=1e-6)
        assert row["aggregate_gbps"] == pytest.approx(spec.aggregate_gbps, rel=1e-6)
        assert row["demand_cv"] == pytest.approx(spec.demand_cv, rel=1e-6)

    def test_deterministic(self):
        a = load_dataset("eu_isp", n_flows=50, seed=9)
        b = load_dataset("eu_isp", n_flows=50, seed=9)
        assert np.array_equal(a.demands, b.demands)
        assert np.array_equal(a.distances, b.distances)

    def test_seeds_differ(self):
        a = load_dataset("eu_isp", n_flows=50, seed=1)
        b = load_dataset("eu_isp", n_flows=50, seed=2)
        assert not np.array_equal(a.demands, b.demands)

    def test_datasets_differ_at_same_seed(self):
        a = load_dataset("eu_isp", n_flows=50, seed=1)
        b = load_dataset("internet2", n_flows=50, seed=1)
        assert not np.array_equal(a.distances, b.distances)

    def test_region_labels_attached(self):
        flows = load_dataset("eu_isp", n_flows=100, seed=1)
        assert flows.regions is not None
        assert set(flows.regions) <= {"metro", "national", "international"}
        # A 54-mile-scale ISP must have traffic in several regions.
        assert len(set(flows.regions)) >= 2

    def test_too_few_flows_rejected(self):
        with pytest.raises(DataError):
            load_dataset("eu_isp", n_flows=2)

    def test_demand_cv_sets_the_flow_floor(self):
        # Internet2's CV of 4.53 cannot be realized by 20 samples.
        with pytest.raises(DataError, match="at least"):
            load_dataset("internet2", n_flows=20)
        assert len(load_dataset("internet2", n_flows=23, seed=1)) == 23

    def test_correlation_direction(self):
        # EU ISP couples demand negatively with distance (local flows are
        # heavier); check the rank correlation sign on a big sample.
        flows = load_dataset("eu_isp", n_flows=800, seed=4)
        ranks_q = np.argsort(np.argsort(flows.demands))
        ranks_d = np.argsort(np.argsort(flows.distances))
        rho = np.corrcoef(ranks_q, ranks_d)[0, 1]
        assert rho < -0.1


class TestTable1Row:
    def test_structure(self):
        row = table1_row("internet2", n_flows=60, seed=2)
        assert row["dataset"] == "internet2"
        assert set(row["paper"]) == set(row["measured"])

    def test_paper_and_measured_agree(self):
        row = table1_row("cdn", n_flows=120, seed=1)
        for field, value in row["paper"].items():
            assert row["measured"][field] == pytest.approx(value, rel=1e-6)


class TestTracePipeline:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_network_trace("eu_isp", n_flows=60, seed=5)

    def test_every_flow_exports_records(self, trace):
        keys = {r.key for r in trace.records}
        # Sampling can drop a tiny flow entirely, but most must survive.
        assert len(keys) >= 0.8 * len(trace.ground_truth)

    def test_multi_hop_flows_export_from_each_router(self, trace):
        by_key = {}
        for r in trace.records:
            by_key.setdefault(r.key, set()).add(r.router)
        for flow in trace.ground_truth:
            if flow.key in by_key and len(flow.path) > 1:
                assert by_key[flow.key] <= set(flow.path)

    def test_flowset_demand_close_to_ground_truth(self, trace):
        flows = trace.to_flowset()
        truth = sum(f.demand_mbps for f in trace.ground_truth)
        assert flows.demands.sum() == pytest.approx(truth, rel=0.1)

    def test_eu_distance_heuristic_is_entry_exit(self, trace):
        flows = trace.to_flowset()
        assert flows.distances.max() < 2500  # European scale

    def test_internet2_distance_is_routed_path(self):
        trace = generate_network_trace("internet2", n_flows=30, seed=6)
        for flow in trace.ground_truth[:10]:
            routed = trace.distance_for(flow.key)
            direct = trace.topology.geographic_distance(
                flow.entry_pop, flow.exit_pop
            )
            assert routed >= direct - 1e-6

    def test_cdn_distance_uses_geoip(self):
        trace = generate_network_trace("cdn", n_flows=30, seed=6)
        for flow in trace.ground_truth[:10]:
            expected = trace.distance_for(flow.key)
            src = trace.geoip.lookup(flow.key.src_addr)
            dst = trace.geoip.lookup(flow.key.dst_addr)
            assert src is not None and dst is not None
            from repro.geo.coords import city_distance_miles

            assert expected == pytest.approx(city_distance_miles(src, dst))

    def test_regions_by_endpoints_for_cdn(self):
        trace = generate_network_trace("cdn", n_flows=40, seed=7)
        flows = trace.to_flowset()
        assert flows.regions is not None

    def test_trace_determinism(self):
        a = generate_network_trace("internet2", n_flows=20, seed=11)
        b = generate_network_trace("internet2", n_flows=20, seed=11)
        assert [f.key for f in a.ground_truth] == [f.key for f in b.ground_truth]

    def test_validation(self):
        with pytest.raises(DataError):
            generate_network_trace("eu_isp", n_flows=0)
        with pytest.raises(DataError):
            generate_network_trace("eu_isp", n_flows=5, duration_seconds=0.0)
