"""Tests for the template-based NetFlow v9 codec."""

import struct

import pytest

from repro.errors import DataError
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP
from repro.netflow.v9 import (
    STANDARD_TEMPLATE_ID,
    TEMPLATE_FLOWSET_ID,
    V9Decoder,
    V9Encoder,
)


def record(i=0, octets=1000, sampling=1, router_hint=0):
    del router_hint
    return NetFlowRecord(
        key=FlowKey(f"10.1.0.{i + 1}", "198.51.100.7", 30000 + i, 443, PROTO_TCP),
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=100,
        last_ms=900,
        router="R1",
        input_if=3,
        output_if=4,
        sampling_interval=sampling,
    )


@pytest.fixture
def encoder():
    return V9Encoder(source_id=7)


@pytest.fixture
def decoder():
    return V9Decoder({7: "R1", 8: "R2"})


class TestRoundtrip:
    def test_basic_roundtrip(self, encoder, decoder):
        original = [record(i) for i in range(5)]
        packets = encoder.encode(original)
        decoded = decoder.decode_all(packets)
        assert decoded == original

    def test_sampling_interval_carried(self, encoder, decoder):
        decoded = decoder.decode_all(encoder.encode([record(0, sampling=512)]))
        assert decoded[0].sampling_interval == 512

    def test_large_batches_split(self, decoder):
        encoder = V9Encoder(source_id=7, max_records_per_packet=10)
        original = [record(i % 200, octets=1000 + i) for i in range(55)]
        packets = encoder.encode(original)
        assert len(packets) == 6
        assert decoder.decode_all(packets) == original

    def test_data_flowsets_are_padded(self, encoder):
        packet = encoder.encode([record(0)])[0]
        assert len(packet) % 4 == 0

    def test_empty_rejected(self, encoder):
        with pytest.raises(DataError):
            encoder.encode([])

    def test_counter_width_enforced(self, encoder):
        with pytest.raises(DataError, match="32-bit"):
            encoder.encode([record(0, octets=1 << 32)])


class TestTemplateStatefulness:
    def test_template_announced_in_first_packet_only(self, decoder):
        encoder = V9Encoder(
            source_id=7, max_records_per_packet=2, template_refresh=100
        )
        packets = encoder.encode([record(i) for i in range(6)])
        assert len(packets) == 3
        # Only the first packet carries the template FlowSet.
        def has_template(packet):
            flowset_id = struct.unpack_from(">H", packet, 20)[0]
            return flowset_id == TEMPLATE_FLOWSET_ID

        assert has_template(packets[0])
        assert not has_template(packets[1])
        assert not has_template(packets[2])
        assert len(decoder.decode_all(packets)) == 6

    def test_data_before_template_is_buffered_then_drained(self, decoder):
        encoder = V9Encoder(
            source_id=7, max_records_per_packet=2, template_refresh=100
        )
        packets = encoder.encode([record(i) for i in range(4)])
        # Deliver out of order: data-only packet first.
        early = decoder.decode(packets[1])
        assert early == []
        assert decoder.pending_bytes() > 0
        drained = decoder.decode(packets[0])
        assert decoder.pending_bytes() == 0
        # The drained batch contains both the buffered and in-packet data.
        assert {r.key.src_port for r in drained} == {30000, 30001, 30002, 30003}

    def test_template_refresh_interval(self, decoder):
        encoder = V9Encoder(
            source_id=7, max_records_per_packet=1, template_refresh=2
        )
        packets = encoder.encode([record(i) for i in range(4)])

        def has_template(packet):
            return struct.unpack_from(">H", packet, 20)[0] == TEMPLATE_FLOWSET_ID

        assert [has_template(p) for p in packets] == [True, False, True, False]

    def test_templates_are_per_source(self):
        encoder_a = V9Encoder(source_id=7)
        encoder_b = V9Encoder(source_id=8)
        decoder = V9Decoder({7: "R1", 8: "R2"})
        packets_a = encoder_a.encode([record(0)])
        packets_b = encoder_b.encode([record(1)])
        # Deliver B's data; its template came with it, so it decodes, but
        # the state for source 7 is untouched.
        out_b = decoder.decode_all(packets_b)
        assert out_b[0].router == "R2"
        out_a = decoder.decode_all(packets_a)
        assert out_a[0].router == "R1"


class TestDecoderValidation:
    def test_unknown_source(self, encoder):
        decoder = V9Decoder({99: "R9"})
        with pytest.raises(DataError, match="source_id"):
            decoder.decode(encoder.encode([record(0)])[0])

    def test_wrong_version(self, encoder, decoder):
        packet = bytearray(encoder.encode([record(0)])[0])
        packet[1] = 5
        with pytest.raises(DataError, match="version"):
            decoder.decode(bytes(packet))

    def test_truncated_packet(self, decoder):
        with pytest.raises(DataError, match="short"):
            decoder.decode(b"\x00\x09\x00")

    def test_malformed_flowset_length(self, encoder, decoder):
        packet = bytearray(encoder.encode([record(0)])[0])
        # Overwrite the first FlowSet's length with something absurd.
        struct.pack_into(">H", packet, 22, 60000)
        with pytest.raises(DataError, match="length"):
            decoder.decode(bytes(packet))

    def test_needs_source_mapping(self):
        with pytest.raises(DataError):
            V9Decoder({})

    def test_encoder_validation(self):
        with pytest.raises(DataError):
            V9Encoder(source_id=-1)
        with pytest.raises(DataError):
            V9Encoder(source_id=1, max_records_per_packet=0)
        with pytest.raises(DataError):
            V9Encoder(source_id=1, template_refresh=0)


class TestInteroperability:
    def test_v9_feeds_the_collector(self, decoder):
        """v9-decoded records drive the same dedup pipeline as v5 ones."""
        from repro.netflow.collector import FlowCollector

        encoder = V9Encoder(source_id=7)
        records = [record(i, octets=5000) for i in range(3)]
        decoded = decoder.decode_all(encoder.encode(records))
        collector = FlowCollector()
        collector.ingest_many(decoded)
        assert len(collector) == 3
        assert all(
            volume == 5000 for volume in collector.deduplicated_octets().values()
        )

    def test_trace_records_roundtrip_via_v9(self):
        from repro.synth.trace import generate_network_trace

        trace = generate_network_trace("internet2", n_flows=20, seed=3)
        routers = trace.topology.pop_codes
        source_of_router = {code: 100 + i for i, code in enumerate(routers)}
        decoder = V9Decoder({v: k for k, v in source_of_router.items()})
        decoded = []
        for router in routers:
            mine = [r for r in trace.records if r.router == router]
            if not mine:
                continue
            encoder = V9Encoder(source_id=source_of_router[router])
            decoded.extend(decoder.decode_all(encoder.encode(mine)))
        assert sorted(r.key.src_addr for r in decoded) == sorted(
            r.key.src_addr for r in trace.records
        )
