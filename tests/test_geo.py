"""Tests for the geographic substrate (coordinates, GeoIP, regions)."""

import pytest

from repro.core.flow import INTERNATIONAL, METRO, NATIONAL
from repro.errors import DataError
from repro.geo.coords import (
    City,
    EUROPEAN_CITIES,
    GeoPoint,
    US_RESEARCH_CITIES,
    WORLD_CITIES,
    city_by_key,
    city_distance_miles,
    haversine_miles,
)
from repro.geo.geoip import GeoIPDatabase
from repro.geo.regions import classify_by_distance, classify_by_endpoints


def city(table, name):
    return next(c for c in table if c.name == name)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(lat=45.0, lon=7.0)
        assert haversine_miles(p, p) == 0.0

    def test_symmetry(self):
        a = GeoPoint(lat=40.71, lon=-74.01)
        b = GeoPoint(lat=51.51, lon=-0.13)
        assert haversine_miles(a, b) == pytest.approx(haversine_miles(b, a))

    def test_new_york_to_london(self):
        nyc = city(WORLD_CITIES, "New York")
        lon = city(WORLD_CITIES, "London")
        # Known great-circle distance ~3,460 miles.
        assert city_distance_miles(nyc, lon) == pytest.approx(3460, rel=0.01)

    def test_amsterdam_to_rotterdam_is_metro_scale(self):
        ams = city(EUROPEAN_CITIES, "Amsterdam")
        rtm = city(EUROPEAN_CITIES, "Rotterdam")
        assert 25 < city_distance_miles(ams, rtm) < 50

    def test_quarter_circumference(self):
        equator = GeoPoint(lat=0.0, lon=0.0)
        pole = GeoPoint(lat=90.0, lon=0.0)
        assert haversine_miles(equator, pole) == pytest.approx(6218, rel=0.01)

    def test_triangle_inequality(self, rng):
        pts = [
            GeoPoint(lat=float(lat), lon=float(lon))
            for lat, lon in zip(
                rng.uniform(-80, 80, 12), rng.uniform(-179, 179, 12)
            )
        ]
        for a, b, c in zip(pts, pts[1:], pts[2:]):
            assert haversine_miles(a, c) <= (
                haversine_miles(a, b) + haversine_miles(b, c) + 1e-6
            )

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-91, 0), (0, 181), (0, -181)])
    def test_coordinates_validated(self, lat, lon):
        with pytest.raises(DataError):
            GeoPoint(lat=lat, lon=lon)


class TestGazetteer:
    def test_city_key_format(self):
        ams = city(EUROPEAN_CITIES, "Amsterdam")
        assert ams.key == "amsterdam-nl"

    def test_city_key_handles_spaces(self):
        slc = city(US_RESEARCH_CITIES, "Salt Lake City")
        assert " " not in slc.key

    def test_city_by_key_roundtrip(self):
        for table in (EUROPEAN_CITIES, US_RESEARCH_CITIES, WORLD_CITIES):
            for c in table:
                assert city_by_key(c.key).name == c.name

    def test_city_by_key_unknown(self):
        with pytest.raises(DataError):
            city_by_key("atlantis-xx")

    def test_tables_have_no_duplicate_keys(self):
        for table in (EUROPEAN_CITIES, US_RESEARCH_CITIES, WORLD_CITIES):
            keys = [c.key for c in table]
            assert len(keys) == len(set(keys))


class TestGeoIP:
    @pytest.fixture
    def db(self):
        return GeoIPDatabase(list(EUROPEAN_CITIES[:5]), blocks_per_city=2)

    def test_allocation_size(self, db):
        assert len(db) == 10

    def test_address_roundtrip(self, db, rng):
        for c in EUROPEAN_CITIES[:5]:
            for _ in range(5):
                addr = db.address_in(c, rng)
                located = db.lookup(addr)
                assert located is not None and located.key == c.key

    def test_lookup_outside_allocation(self, db):
        assert db.lookup("200.1.2.3") is None

    def test_lookup_invalid_address(self, db):
        with pytest.raises(DataError):
            db.lookup("999.1.2.3")
        with pytest.raises(DataError):
            db.lookup("not-an-ip")

    def test_networks_for_unknown_city(self, db):
        stranger = City(name="Oslo", country="NO", location=GeoPoint(59.9, 10.8))
        with pytest.raises(DataError):
            db.networks_for(stranger)

    def test_blocks_do_not_overlap(self, db):
        entries = db.entries
        for a, b in zip(entries, entries[1:]):
            assert int(a.network.broadcast_address) < int(
                b.network.network_address
            )

    def test_cities_listing(self, db):
        assert [c.key for c in db.cities()] == [c.key for c in EUROPEAN_CITIES[:5]]

    def test_constructor_validation(self):
        with pytest.raises(DataError):
            GeoIPDatabase([], blocks_per_city=1)
        with pytest.raises(DataError):
            GeoIPDatabase(list(EUROPEAN_CITIES[:2]), blocks_per_city=0)


class TestRegionClassifiers:
    def test_by_endpoints_metro(self):
        ams = city(EUROPEAN_CITIES, "Amsterdam")
        assert classify_by_endpoints(ams, ams) == METRO

    def test_by_endpoints_national(self):
        ams = city(EUROPEAN_CITIES, "Amsterdam")
        rtm = city(EUROPEAN_CITIES, "Rotterdam")
        assert classify_by_endpoints(ams, rtm) == NATIONAL

    def test_by_endpoints_international(self):
        ams = city(EUROPEAN_CITIES, "Amsterdam")
        par = city(EUROPEAN_CITIES, "Paris")
        assert classify_by_endpoints(ams, par) == INTERNATIONAL

    @pytest.mark.parametrize(
        "distance,expected",
        [(0.0, METRO), (9.99, METRO), (10.0, NATIONAL), (99.9, NATIONAL),
         (100.0, INTERNATIONAL), (5000.0, INTERNATIONAL)],
    )
    def test_by_distance_thresholds(self, distance, expected):
        assert classify_by_distance(distance) == expected

    def test_by_distance_custom_thresholds(self):
        assert classify_by_distance(40.0, metro_miles=50.0, national_miles=60.0) == (
            METRO
        )

    def test_by_distance_validation(self):
        with pytest.raises(DataError):
            classify_by_distance(-1.0)
        with pytest.raises(DataError):
            classify_by_distance(5.0, metro_miles=100.0, national_miles=10.0)


def test_haversine_returns_plain_float():
    """Geo primitives are pure-Python: no array inputs required."""
    assert isinstance(haversine_miles(GeoPoint(0, 0), GeoPoint(1, 1)), float)
