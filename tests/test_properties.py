"""Property-based tests (hypothesis) on the core economic invariants.

These pin down the structure the closed forms rely on:

* demand curves slope down; prices/costs/valuations stay positive;
* calibration round-trips (fit then evaluate at P0 recovers the data);
* per-flow optimal prices dominate any uniform price;
* refining a partition (splitting a bundle) never loses profit;
* logit shares live on the simplex; composition (Eqs. 10-11) is exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundling import evaluate_partition
from repro.core.ced import CEDDemand
from repro.core.logit import LogitDemand
from repro.errors import DataError
from repro.synth.distributions import calibrate_positive, weighted_cv, weighted_mean

# Bounded, well-conditioned generators: the models are exercised far past
# these ranges in the sweep benches; hypothesis probes the interactions.
alphas_ced = st.floats(min_value=1.05, max_value=8.0)
alphas_logit = st.floats(min_value=0.2, max_value=6.0)
positive = st.floats(min_value=0.05, max_value=50.0)


def arrays_of(values, min_size=1, max_size=8):
    return st.lists(values, min_size=min_size, max_size=max_size).map(
        lambda xs: np.asarray(xs, dtype=float)
    )


class TestCEDProperties:
    @given(alpha=alphas_ced, v=positive, p1=positive, p2=positive)
    def test_demand_slopes_down(self, alpha, v, p1, p2):
        model = CEDDemand(alpha)
        lo, hi = sorted((p1, p2))
        if lo == hi:
            return
        q_lo = model.quantities(np.array([v]), np.array([lo]))[0]
        q_hi = model.quantities(np.array([v]), np.array([hi]))[0]
        assert q_hi <= q_lo

    @given(alpha=alphas_ced, demands=arrays_of(positive), p0=positive)
    def test_calibration_roundtrip(self, alpha, demands, p0):
        model = CEDDemand(alpha)
        v = model.fit_valuations(demands, p0)
        recovered = model.quantities(v, np.full(demands.size, p0))
        assert recovered == pytest.approx(demands, rel=1e-9)

    @given(
        alpha=alphas_ced,
        v=arrays_of(positive, min_size=2, max_size=6),
        data=st.data(),
    )
    def test_per_flow_prices_dominate_uniform(self, alpha, v, data):
        model = CEDDemand(alpha)
        c = data.draw(arrays_of(positive, min_size=v.size, max_size=v.size))
        p_star = model.optimal_prices(v, c)
        uniform = model.uniform_price(v, c)
        assert model.profit(v, c, p_star) >= model.profit(
            v, c, np.full(v.size, uniform)
        ) - 1e-9 * abs(model.profit(v, c, p_star))

    @given(alpha=alphas_ced, v=positive, c=positive)
    def test_potential_profit_is_positive(self, alpha, v, c):
        model = CEDDemand(alpha)
        pi = model.potential_profits(np.array([v]), np.array([c]))
        assert pi[0] > 0

    @given(alpha=alphas_ced, v=positive, c=positive, eps=st.floats(0.01, 0.5))
    def test_eq4_is_a_maximum(self, alpha, v, c, eps):
        model = CEDDemand(alpha)
        va, ca = np.array([v]), np.array([c])
        p_star = model.optimal_prices(va, ca)
        best = model.profit(va, ca, p_star)
        assert model.profit(va, ca, p_star * (1 + eps)) <= best + 1e-12
        assert model.profit(va, ca, p_star * (1 - eps * 0.9)) <= best + 1e-12


class TestLogitProperties:
    @given(
        alpha=alphas_logit,
        v=arrays_of(st.floats(-5.0, 30.0), min_size=1, max_size=8),
        data=st.data(),
    )
    def test_shares_on_simplex(self, alpha, v, data):
        model = LogitDemand(alpha, s0=0.2)
        p = data.draw(arrays_of(positive, min_size=v.size, max_size=v.size))
        shares = model.shares(v, p)
        assert np.all(shares >= 0)
        total = shares.sum() + model.outside_share(v, p)
        assert total == pytest.approx(1.0)

    @given(
        alpha=alphas_logit,
        s0=st.floats(0.05, 0.9),
        demands=arrays_of(positive, min_size=1, max_size=8),
        p0=st.floats(1.0, 40.0),
    )
    def test_calibration_roundtrip(self, alpha, s0, demands, p0):
        model = LogitDemand(alpha, s0=s0)
        v = model.fit_valuations(demands, p0)
        k = model.population(demands)
        recovered = k * model.shares(v, np.full(demands.size, p0))
        assert recovered == pytest.approx(demands, rel=1e-9)
        assert model.outside_share(v, np.full(demands.size, p0)) == (
            pytest.approx(s0)
        )

    @given(
        alpha=alphas_logit,
        v=arrays_of(st.floats(0.0, 20.0), min_size=2, max_size=6),
        data=st.data(),
    )
    def test_composition_exact(self, alpha, v, data):
        model = LogitDemand(alpha, s0=0.2)
        c = data.draw(arrays_of(positive, min_size=v.size, max_size=v.size))
        price = data.draw(positive)
        vb, cb = model.compose_bundle(v, c)
        direct = model.profit(v, c, np.full(v.size, price))
        composite = model.profit(
            np.array([vb]), np.array([cb]), np.array([price])
        )
        assert composite == pytest.approx(direct, rel=1e-9, abs=1e-12)

    @given(
        alpha=alphas_logit,
        v=arrays_of(st.floats(0.0, 20.0), min_size=1, max_size=6),
        data=st.data(),
    )
    def test_equal_markup_optimum_beats_jitter(self, alpha, v, data):
        model = LogitDemand(alpha, s0=0.2)
        c = data.draw(arrays_of(positive, min_size=v.size, max_size=v.size))
        p_star = model.optimal_prices(v, c)
        best = model.profit(v, c, p_star)
        jitter = data.draw(
            arrays_of(st.floats(-0.3, 0.3), min_size=v.size, max_size=v.size)
        )
        candidate = p_star + jitter
        if np.any(candidate <= 0):
            return
        assert model.profit(v, c, candidate) <= best + 1e-9 * max(1.0, abs(best))


class TestPartitionRefinement:
    @settings(deadline=None)
    @given(
        family=st.sampled_from(["ced", "logit"]),
        demands=arrays_of(positive, min_size=4, max_size=8),
        data=st.data(),
        cut=st.integers(min_value=1, max_value=3),
    )
    def test_splitting_a_bundle_never_loses_profit(
        self, family, demands, data, cut
    ):
        model = (
            CEDDemand(1.2) if family == "ced" else LogitDemand(1.2, s0=0.2)
        )
        n = demands.size
        costs = data.draw(arrays_of(positive, min_size=n, max_size=n))
        v = model.fit_valuations(demands, 20.0)
        coarse = [np.arange(n)]
        fine = [np.arange(0, cut), np.arange(cut, n)]
        profit_coarse = evaluate_partition(model, v, costs, coarse)
        profit_fine = evaluate_partition(model, v, costs, fine)
        assert profit_fine >= profit_coarse - 1e-9 * max(1.0, abs(profit_coarse))


class TestCalibrationUtilities:
    @given(
        values=arrays_of(positive, min_size=4, max_size=30),
        mean=st.floats(1.0, 500.0),
        cv=st.floats(0.1, 2.0),
    )
    def test_calibrate_positive_hits_targets(self, values, mean, cv):
        if np.allclose(values, values[0]):
            return
        try:
            calibrated = calibrate_positive(values, mean_target=mean, cv_target=cv)
        except DataError as exc:
            # The power transform has a documented CV supremum set by the
            # sample shape; an unreachable target must say so, not crash.
            assert "unreachable" in str(exc)
            return
        assert np.all(calibrated > 0)
        assert weighted_mean(calibrated) == pytest.approx(mean, rel=1e-6)
        assert weighted_cv(calibrated) == pytest.approx(cv, rel=1e-6)

    @given(
        values=arrays_of(positive, min_size=4, max_size=30),
        weights=arrays_of(positive, min_size=4, max_size=30),
        mean=st.floats(1.0, 100.0),
        cv=st.floats(0.1, 1.5),
    )
    def test_calibrate_positive_weighted(self, values, weights, mean, cv):
        n = min(values.size, weights.size)
        values, weights = values[:n], weights[:n]
        if n < 4 or np.allclose(values, values[0]):
            return
        try:
            calibrated = calibrate_positive(
                values, mean_target=mean, cv_target=cv, weights=weights
            )
        except DataError as exc:
            assert "unreachable" in str(exc)
            return
        assert weighted_mean(calibrated, weights) == pytest.approx(mean, rel=1e-6)
        assert weighted_cv(calibrated, weights) == pytest.approx(cv, rel=1e-6)

    @given(values=arrays_of(positive, min_size=4, max_size=30))
    def test_calibration_preserves_rank_order(self, values):
        if np.allclose(values, values[0]):
            return
        try:
            calibrated = calibrate_positive(values, mean_target=10.0, cv_target=0.8)
        except DataError as exc:
            assert "unreachable" in str(exc)
            return
        # Monotone: strictly smaller inputs never map above larger ones
        # (ties may land equal after the transform's rounding).
        order = np.argsort(values, kind="stable")
        sorted_in = values[order]
        sorted_out = calibrated[order]
        for (a_in, a_out), (b_in, b_out) in zip(
            zip(sorted_in, sorted_out), zip(sorted_in[1:], sorted_out[1:])
        ):
            if b_in > a_in:
                assert b_out >= a_out
