"""The exception hierarchy: everything catches as ReproError."""

import inspect

import pytest

import repro.errors
from repro.errors import (
    AccountingError,
    BundlingError,
    CalibrationError,
    ConfigurationError,
    DataError,
    ExecutorError,
    MechanismError,
    ModelParameterError,
    OptimizationError,
    QuoteTimeoutError,
    ReproError,
    SnapshotUnavailableError,
    TopologyError,
    WorkerLostError,
)

ALL_ERRORS = [
    AccountingError,
    BundlingError,
    CalibrationError,
    ConfigurationError,
    DataError,
    ExecutorError,
    MechanismError,
    ModelParameterError,
    OptimizationError,
    QuoteTimeoutError,
    SnapshotUnavailableError,
    TopologyError,
    WorkerLostError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_every_public_error_subclasses_the_package_base():
    """Exhaustive: any exception the errors module exports — now or in a
    future PR — must derive from ReproError, so ``except ReproError``
    stays a complete catch for library failures."""
    exported = [
        obj
        for name, obj in inspect.getmembers(repro.errors, inspect.isclass)
        if issubclass(obj, Exception) and not name.startswith("_")
    ]
    assert ReproError in exported
    for exc_type in exported:
        assert issubclass(exc_type, ReproError), exc_type
    # And this file's explicit list is in sync with the module.
    assert set(ALL_ERRORS) <= set(exported)
    assert len(exported) == len(ALL_ERRORS) + 1  # + ReproError itself


def test_value_like_errors_are_value_errors():
    for exc_type in (
        ModelParameterError,
        BundlingError,
        ConfigurationError,
        DataError,
        MechanismError,
        TopologyError,
    ):
        assert issubclass(exc_type, ValueError)


def test_runtime_like_errors_are_runtime_errors():
    for exc_type in (
        CalibrationError,
        OptimizationError,
        AccountingError,
        SnapshotUnavailableError,
        ExecutorError,
        WorkerLostError,
    ):
        assert issubclass(exc_type, RuntimeError)


def test_worker_lost_is_an_executor_error():
    assert issubclass(WorkerLostError, ExecutorError)


def test_quote_timeout_is_a_timeout_error():
    assert issubclass(QuoteTimeoutError, TimeoutError)


def test_catching_base_catches_subclass():
    with pytest.raises(ReproError):
        raise CalibrationError("fit failed")


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_errors_carry_messages(exc_type):
    try:
        raise exc_type("specific detail")
    except ReproError as caught:
        assert "specific detail" in str(caught)
