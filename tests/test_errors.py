"""The exception hierarchy: everything catches as ReproError."""

import pytest

from repro.errors import (
    AccountingError,
    BundlingError,
    CalibrationError,
    DataError,
    ModelParameterError,
    OptimizationError,
    ReproError,
    TopologyError,
)

ALL_ERRORS = [
    AccountingError,
    BundlingError,
    CalibrationError,
    DataError,
    ModelParameterError,
    OptimizationError,
    TopologyError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_value_like_errors_are_value_errors():
    for exc_type in (ModelParameterError, BundlingError, DataError, TopologyError):
        assert issubclass(exc_type, ValueError)


def test_runtime_like_errors_are_runtime_errors():
    for exc_type in (CalibrationError, OptimizationError, AccountingError):
        assert issubclass(exc_type, RuntimeError)


def test_catching_base_catches_subclass():
    with pytest.raises(ReproError):
        raise CalibrationError("fit failed")


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_errors_carry_messages(exc_type):
    try:
        raise exc_type("specific detail")
    except ReproError as caught:
        assert "specific detail" in str(caught)
