"""Tests for commit-level (volume-discount) pricing."""

import numpy as np
import pytest

from repro.core.commitments import (
    CommitContract,
    CommitMarket,
    ContractChoice,
)
from repro.errors import ModelParameterError


@pytest.fixture
def market():
    return CommitMarket(alpha=2.0, unit_cost=1.0)


@pytest.fixture
def customers(rng):
    return rng.lognormal(mean=1.5, sigma=0.8, size=60)


class TestConstruction:
    @pytest.mark.parametrize("alpha", [1.0, 0.5, float("nan")])
    def test_alpha_validated(self, alpha):
        with pytest.raises(ModelParameterError):
            CommitMarket(alpha=alpha, unit_cost=1.0)

    def test_unit_cost_validated(self):
        with pytest.raises(ModelParameterError):
            CommitMarket(alpha=2.0, unit_cost=0.0)

    def test_contract_validated(self):
        with pytest.raises(ModelParameterError):
            CommitContract(commit_mbps=-1.0, price_per_mbps=1.0)
        with pytest.raises(ModelParameterError):
            CommitContract(commit_mbps=0.0, price_per_mbps=0.0)


class TestSingleContract:
    def test_unconstrained_usage_is_ced_demand(self, market):
        contract = CommitContract(commit_mbps=0.0, price_per_mbps=2.0)
        choice = market.evaluate(4.0, contract)
        assert choice.usage_mbps == pytest.approx((4.0 / 2.0) ** 2)
        assert choice.payment == pytest.approx(2.0 * 4.0)
        # CED surplus: p q / (alpha - 1) = p q at alpha = 2.
        assert choice.surplus == pytest.approx(choice.payment)

    def test_commit_floor_binds_small_customers(self, market):
        contract = CommitContract(commit_mbps=100.0, price_per_mbps=2.0)
        choice = market.evaluate(4.0, contract)  # wants 4 Mbps, pays for 100
        assert choice.usage_mbps == 100.0
        assert choice.payment == pytest.approx(200.0)
        assert choice.surplus < 0

    def test_big_customer_clears_the_commit(self, market):
        contract = CommitContract(commit_mbps=4.0, price_per_mbps=2.0)
        choice = market.evaluate(20.0, contract)
        assert choice.usage_mbps == pytest.approx(100.0)
        assert choice.surplus > 0

    def test_utility_concave_increasing(self, market):
        u = [market.utility(3.0, q) for q in (1.0, 2.0, 3.0)]
        assert u[0] < u[1] < u[2]
        assert u[1] - u[0] > u[2] - u[1]


class TestSelfSelection:
    def test_opt_out_when_everything_is_unprofitable(self, market):
        menu = [CommitContract(commit_mbps=1000.0, price_per_mbps=50.0)]
        choice = market.choose(0.5, menu)
        assert choice.contract_index is None
        assert choice.payment == 0.0

    def test_selection_is_monotone_in_valuation(self, market):
        # Volume discounts: bigger commits, cheaper unit price.
        menu = [
            CommitContract(commit_mbps=0.0, price_per_mbps=3.0),
            CommitContract(commit_mbps=10.0, price_per_mbps=2.4),
            CommitContract(commit_mbps=60.0, price_per_mbps=2.0),
        ]
        picks = []
        for valuation in (1.0, 3.0, 6.0, 12.0, 25.0):
            choice = market.choose(valuation, menu)
            picks.append(
                -1 if choice.contract_index is None else choice.contract_index
            )
        assert picks == sorted(picks)

    def test_choice_maximizes_surplus(self, market):
        menu = [
            CommitContract(commit_mbps=0.0, price_per_mbps=3.0),
            CommitContract(commit_mbps=20.0, price_per_mbps=2.0),
        ]
        for valuation in (2.0, 8.0, 15.0):
            choice = market.choose(valuation, menu)
            for contract in menu:
                assert choice.surplus >= market.evaluate(
                    valuation, contract
                ).surplus - 1e-9

    def test_menu_required(self, market):
        with pytest.raises(ModelParameterError):
            market.choose(1.0, [])


class TestProfit:
    def test_blended_baseline_markup(self, market, customers):
        baseline = market.best_single_price(customers)
        assert baseline.price_per_mbps == pytest.approx(2.0)  # 2c at alpha=2
        assert baseline.commit_mbps == 0.0

    def test_profit_accounts_for_cost(self, market):
        menu = [CommitContract(commit_mbps=0.0, price_per_mbps=2.0)]
        valuations = [4.0]
        q = (4.0 / 2.0) ** 2
        assert market.profit(valuations, menu) == pytest.approx(2.0 * q - 1.0 * q)

    def test_served_surplus_nonnegative_under_selection(self, market, customers):
        menu = [
            CommitContract(commit_mbps=0.0, price_per_mbps=3.0),
            CommitContract(commit_mbps=50.0, price_per_mbps=2.2),
        ]
        for choice in market.simulate(customers, menu):
            assert choice.surplus >= -1e-12


class TestMenuOptimization:
    def test_optimized_menu_beats_or_matches_blended(self, market, customers):
        usages = (np.asarray(customers) / 2.0) ** 2
        commits = [0.0, np.quantile(usages, 0.6), np.quantile(usages, 0.9)]
        menu = market.optimize_menu_prices(customers, commits)
        blended_profit = market.profit(
            customers, [market.best_single_price(customers)]
        )
        assert market.profit(customers, menu) >= blended_profit - 1e-9

    def test_optimized_menu_discounts_volume(self, market, customers):
        """If the optimizer keeps several active contracts, the bigger
        commits carry weakly lower unit prices (volume discounts)."""
        usages = (np.asarray(customers) / 2.0) ** 2
        commits = [0.0, float(np.quantile(usages, 0.7))]
        menu = market.optimize_menu_prices(customers, commits)
        if len(menu) == 2:
            chosen = {
                c.contract_index for c in market.simulate(customers, menu)
            }
            if chosen == {0, 1}:
                assert menu[1].price_per_mbps <= menu[0].price_per_mbps + 1e-6

    def test_validation(self, market):
        with pytest.raises(ModelParameterError):
            market.optimize_menu_prices([1.0], [])
        with pytest.raises(ModelParameterError):
            market.optimize_menu_prices([], [0.0])
        with pytest.raises(ModelParameterError):
            market.optimize_menu_prices([1.0], [-5.0])


def test_contract_choice_is_frozen():
    choice = ContractChoice(
        contract_index=0, usage_mbps=1.0, payment=2.0, surplus=0.5
    )
    with pytest.raises(AttributeError):
        choice.payment = 3.0
