"""Tests for flow-CSV and tier-design JSON I/O."""

import numpy as np
import pytest

from repro.accounting.tier_designer import TierDesign
from repro.core.flow import FlowSet
from repro.errors import DataError
from repro.io import (
    design_from_json,
    design_to_json,
    flowset_from_csv,
    flowset_to_csv,
    load_design,
    load_flowset,
    save_design,
    save_flowset,
)
from repro.synth.datasets import load_dataset


class TestFlowCSVRoundtrip:
    def test_minimal_columns(self, small_flows):
        text = flowset_to_csv(small_flows)
        parsed = flowset_from_csv(text)
        assert np.array_equal(parsed.demands, small_flows.demands)
        assert np.array_equal(parsed.distances, small_flows.distances)
        assert parsed.regions is None

    def test_labeled_columns(self, labeled_flows):
        parsed = flowset_from_csv(flowset_to_csv(labeled_flows))
        assert parsed.regions == labeled_flows.regions

    def test_full_columns(self):
        flows = FlowSet(
            demands_mbps=[1.5, 2.5],
            distances_miles=[10.0, 20.0],
            regions=["metro", None],
            classes=["on-net", "off-net"],
            srcs=["10.0.0.1", None],
            dsts=["10.0.1.1", "10.0.2.1"],
        )
        parsed = flowset_from_csv(flowset_to_csv(flows))
        assert parsed.regions == ("metro", None)
        assert parsed.classes == ("on-net", "off-net")
        assert parsed.srcs == ("10.0.0.1", None)
        assert parsed.dsts == ("10.0.1.1", "10.0.2.1")

    def test_float_precision_exact(self):
        flows = FlowSet(
            demands_mbps=[1.0 / 3.0, 2.0 / 7.0], distances_miles=[np.pi, 1e-7]
        )
        parsed = flowset_from_csv(flowset_to_csv(flows))
        assert np.array_equal(parsed.demands, flows.demands)
        assert np.array_equal(parsed.distances, flows.distances)

    def test_synthetic_dataset_roundtrip(self):
        flows = load_dataset("cdn", n_flows=40, seed=5)
        parsed = flowset_from_csv(flowset_to_csv(flows))
        assert parsed.table1_row() == flows.table1_row()

    def test_file_roundtrip(self, tmp_path, small_flows):
        path = save_flowset(small_flows, tmp_path / "matrix.csv")
        loaded = load_flowset(path)
        assert np.array_equal(loaded.demands, small_flows.demands)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no such"):
            load_flowset(tmp_path / "nope.csv")


class TestFlowCSVValidation:
    def test_empty_text(self):
        with pytest.raises(DataError, match="empty"):
            flowset_from_csv("")

    def test_missing_required_column(self):
        with pytest.raises(DataError, match="demand_mbps"):
            flowset_from_csv("distance_miles\n1.0\n")

    def test_unknown_column(self):
        with pytest.raises(DataError, match="unknown columns"):
            flowset_from_csv("demand_mbps,distance_miles,color\n1,2,red\n")

    def test_ragged_row(self):
        with pytest.raises(DataError, match="line 2"):
            flowset_from_csv("demand_mbps,distance_miles\n1.0\n")

    def test_non_numeric_cell(self):
        with pytest.raises(DataError, match="line 3"):
            flowset_from_csv("demand_mbps,distance_miles\n1.0,2.0\nfast,3.0\n")

    def test_header_only(self):
        with pytest.raises(DataError, match="no data rows"):
            flowset_from_csv("demand_mbps,distance_miles\n")

    def test_blank_lines_skipped(self):
        parsed = flowset_from_csv(
            "demand_mbps,distance_miles\n1.0,2.0\n\n3.0,4.0\n"
        )
        assert len(parsed) == 2

    def test_invalid_flow_values_propagate(self):
        with pytest.raises(DataError):
            flowset_from_csv("demand_mbps,distance_miles\n-1.0,2.0\n")


@pytest.fixture
def design():
    return TierDesign(
        provider_asn=64500,
        rates={1: 15.5, 2: 22.0},
        tier_of_destination={"10.0.0.1": 1, "10.0.0.2": 2, "10.0.0.3": 1},
    )


class TestDesignJSON:
    def test_roundtrip(self, design):
        parsed = design_from_json(design_to_json(design))
        assert parsed.provider_asn == design.provider_asn
        assert parsed.rates == design.rates
        assert parsed.tier_of_destination == design.tier_of_destination

    def test_file_roundtrip(self, tmp_path, design):
        path = save_design(design, tmp_path / "tiers.json")
        loaded = load_design(path)
        assert loaded.rates == design.rates

    def test_loaded_design_is_operable(self, design):
        parsed = design_from_json(design_to_json(design))
        rib = parsed.routing_table()
        assert rib.tier_for("10.0.0.2", 64500) == 2

    def test_malformed_json(self):
        with pytest.raises(DataError, match="malformed"):
            design_from_json("{not json")

    def test_non_object(self):
        with pytest.raises(DataError, match="object"):
            design_from_json("[1, 2]")

    def test_version_checked(self, design):
        text = design_to_json(design).replace(
            '"format_version": 1', '"format_version": 99'
        )
        with pytest.raises(DataError, match="format_version"):
            design_from_json(text)

    def test_missing_rate_for_assigned_tier(self):
        text = """
        {"format_version": 1, "provider_asn": 1,
         "rates": {"1": 10.0},
         "tier_of_destination": {"10.0.0.1": 2}}
        """
        with pytest.raises(DataError, match="no rate"):
            design_from_json(text)

    def test_nonpositive_rate_rejected(self):
        text = """
        {"format_version": 1, "provider_asn": 1,
         "rates": {"1": 0.0},
         "tier_of_destination": {"10.0.0.1": 1}}
        """
        with pytest.raises(DataError, match="non-positive"):
            design_from_json(text)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no such"):
            load_design(tmp_path / "nope.json")

    def test_end_to_end_design_export(self, tmp_path):
        """Market -> design -> JSON -> reload -> same invoiceable config."""
        from repro.core.bundling import ProfitWeightedBundling
        from repro.core.ced import CEDDemand
        from repro.core.cost import LinearDistanceCost
        from repro.core.market import Market

        flows = FlowSet(
            demands_mbps=[50.0, 20.0, 5.0],
            distances_miles=[5.0, 100.0, 2000.0],
            dsts=["10.0.0.1", "10.0.0.2", "10.0.0.3"],
        )
        market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 2)
        design = TierDesign.from_outcome(market, outcome)
        loaded = load_design(save_design(design, tmp_path / "d.json"))
        assert loaded.rates == design.rates
        assert loaded.tier_of_destination == design.tier_of_destination
