"""Tests for the command-line interface."""

import pytest

from repro import errors
from repro.cli import build_parser, main
from repro.errors import EXIT_CODES, exit_code_for


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_numbers_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "17"])

    def test_design_dataset_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design", "comcast"])


class TestCommands:
    def test_datasets(self, capsys):
        out = run_cli(capsys, "datasets")
        assert "eu_isp" in out and "internet2" in out and "Gbps" in out

    def test_table1(self, capsys):
        out = run_cli(capsys, "--flows", "30", "--seed", "2", "table1")
        assert "Table 1" in out
        assert "cdn" in out

    def test_figure1(self, capsys):
        out = run_cli(capsys, "figure", "1")
        assert "Figure 1" in out and "$2.25" in out

    def test_figure4(self, capsys):
        out = run_cli(capsys, "figure", "4")
        assert "p* = $2.00" in out

    def test_figure8_small(self, capsys):
        out = run_cli(capsys, "--flows", "24", "figure", "8")
        assert "profit capture" in out
        assert "optimal" in out and "profit-weighted" in out

    def test_figure13_small(self, capsys):
        out = run_cli(capsys, "--flows", "24", "figure", "13")
        assert "destination-type" in out

    def test_figure16_small(self, capsys):
        out = run_cli(capsys, "--flows", "24", "figure", "16")
        assert "s0 in" in out

    def test_design(self, capsys):
        out = run_cli(
            capsys,
            "--flows",
            "30",
            "design",
            "eu_isp",
            "--tiers",
            "3",
            "--demand",
            "logit",
        )
        assert "profit capture" in out
        assert "logit" in out

    def test_design_strategy_choice(self, capsys):
        out = run_cli(
            capsys, "--flows", "30", "design", "cdn", "--strategy", "optimal"
        )
        assert "strategy: optimal" in out

    def test_flows_flag_changes_market_size(self, capsys):
        out = run_cli(capsys, "--flows", "25", "design", "eu_isp")
        assert "n=25" in out


class TestRuntimeFlags:
    def test_jobs_flag_output_matches_serial(self, capsys):
        """--jobs exercises the process pool without changing the output.

        The parallel run also passes --no-cache so it cannot reuse the
        serial run's cached results: every work unit really crosses the
        process boundary.
        """
        serial = run_cli(capsys, "--flows", "24", "figure", "14")
        parallel = run_cli(
            capsys, "--flows", "24", "figure", "14", "--jobs", "2", "--no-cache"
        )
        assert parallel == serial

    def test_jobs_help_text(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "14", "--jobs", "4"])
        assert args.jobs == 4
        assert parser.parse_args(["figure", "14"]).jobs is None

    def test_no_cache_flag_output_matches_cached(self, capsys):
        """--no-cache disables every cache layer but changes nothing."""
        from repro.runtime import cache as runtime_cache
        from repro.runtime.metrics import METRICS

        cached_run = run_cli(capsys, "--flows", "24", "figure", "10")
        before = METRICS.counter("cache_hits")
        uncached_run = run_cli(
            capsys, "--flows", "24", "figure", "10", "--no-cache"
        )
        assert uncached_run == cached_run
        # No cache traffic happened during the --no-cache run...
        assert METRICS.counter("cache_hits") == before
        # ...and the global toggle was restored afterwards.
        assert runtime_cache.cache_enabled()

    def test_no_cache_parses(self):
        args = build_parser().parse_args(["table1", "--no-cache"])
        assert args.no_cache is True

    def test_metrics_report_written(self, capsys, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        run_cli(
            capsys,
            "--flows",
            "24",
            "figure",
            "10",
            "--metrics",
            str(target),
        )
        payload = json.loads(target.read_text())
        assert payload["command"] == "figure"
        assert payload["wall_time_s"] > 0
        assert payload["jobs"] == 1
        assert "counters" in payload and "stages" in payload


class TestReportAndExport:
    def test_report_to_stdout(self, capsys):
        out = run_cli(capsys, "--flows", "24", "report")
        assert "# Reproduction report" in out
        assert "## Table 1" in out
        assert "## Figure 16" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        out = run_cli(capsys, "--flows", "24", "report", "--output", str(target))
        assert "wrote" in out
        assert target.exists()
        assert "## Figure 8" in target.read_text()

    def test_export_roundtrips(self, capsys, tmp_path):
        from repro.io import load_flowset

        target = tmp_path / "matrix.csv"
        out = run_cli(capsys, "--flows", "25", "export", "cdn", str(target))
        assert "25 flows" in out
        flows = load_flowset(target)
        assert len(flows) == 25
        assert flows.aggregate_gbps() == pytest.approx(96.0)


class TestExitCodes:
    @pytest.mark.parametrize(
        "exc_class,expected", sorted(EXIT_CODES.items(), key=lambda kv: kv[1])
    )
    def test_every_repro_error_has_a_distinct_code(self, exc_class, expected):
        assert exit_code_for(exc_class("boom")) == expected
        assert expected >= 10  # clear of 1 (generic) and 2 (argparse usage)

    def test_every_error_subclass_is_mapped(self):
        import inspect

        mapped = set(EXIT_CODES)
        for obj in vars(errors).values():
            if inspect.isclass(obj) and issubclass(obj, errors.ReproError):
                assert obj in mapped, f"{obj.__name__} needs an exit code"

    def test_subclasses_inherit_via_mro(self):
        class FutureCalibrationError(errors.CalibrationError):
            pass

        assert exit_code_for(FutureCalibrationError("x")) == 12
        assert exit_code_for(RuntimeError("x")) == 1

    def test_missing_trace_file_exits_with_data_error_code(self, capsys):
        code = main(["trace", "summarize", "/nonexistent/trace.jsonl"])
        assert code == EXIT_CODES[errors.DataError] == 16
        err = capsys.readouterr().err
        assert "DataError" in err

    def test_malformed_env_exits_with_configuration_code(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_JOBS", "many")
        code = main(["figure", "4"])
        assert code == EXIT_CODES[errors.ConfigurationError] == 15
        assert "REPRO_JOBS" in capsys.readouterr().err


class TestOfferingsAndDrift:
    def test_offerings_linear(self, capsys):
        out = run_cli(capsys, "--flows", "40", "offerings", "eu_isp")
        assert "conventional-transit" in out
        assert "profit-weighted-3-tiers" in out

    def test_offerings_destination_type(self, capsys):
        out = run_cli(
            capsys,
            "--flows",
            "40",
            "offerings",
            "cdn",
            "--cost",
            "destination-type",
        )
        assert "paid-peering" in out

    def test_drift_cycle(self, capsys, tmp_path):
        """Design on a dataset, save everything, score it via the CLI."""
        from repro.accounting import TierDesign
        from repro.core import CEDDemand, LinearDistanceCost, Market
        from repro.core.bundling import ProfitWeightedBundling
        from repro.core.flow import FlowSet
        from repro.io import save_design, save_flowset

        import numpy as np

        rng = np.random.default_rng(6)
        flows = FlowSet(
            demands_mbps=rng.lognormal(3.0, 1.0, 30),
            distances_miles=rng.lognormal(3.5, 0.8, 30),
            dsts=[f"10.2.0.{i + 1}" for i in range(30)],
        )
        market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0)
        outcome = market.tiered_outcome(ProfitWeightedBundling(), 3)
        design_path = save_design(
            TierDesign.from_outcome(market, outcome), tmp_path / "d.json"
        )
        matrix_path = save_flowset(flows, tmp_path / "m.csv")

        out = run_cli(
            capsys, "drift", str(design_path), str(matrix_path), "--rate", "20.0"
        )
        assert "monthly regret" in out
        assert "keep current tiers" in out  # same traffic: no drift
