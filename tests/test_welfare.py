"""Tests for the welfare analysis (extension of §2.2.1 to full markets)."""

import pytest

from repro.core.bundling import OptimalBundling, ProfitWeightedBundling
from repro.core.welfare import (
    WelfareBreakdown,
    render_welfare_table,
    welfare_comparison,
    welfare_curve,
)


class TestBreakdown:
    def test_welfare_is_sum(self):
        breakdown = WelfareBreakdown(label="x", profit=10.0, consumer_surplus=4.0)
        assert breakdown.welfare == 14.0


class TestComparison:
    def test_gains_are_differences(self, ced_market):
        comparison = welfare_comparison(ced_market, OptimalBundling(), 3)
        assert comparison.profit_gain == pytest.approx(
            comparison.tiered.profit - comparison.blended.profit
        )
        assert comparison.welfare_gain == pytest.approx(
            comparison.profit_gain + comparison.surplus_gain
        )

    def test_blended_matches_market_baseline(self, any_market):
        comparison = welfare_comparison(any_market, OptimalBundling(), 2)
        assert comparison.blended.profit == pytest.approx(
            any_market.blended_profit()
        )
        assert comparison.blended.consumer_surplus == pytest.approx(
            any_market.blended_surplus()
        )

    def test_per_flow_profit_is_ceiling(self, any_market):
        comparison = welfare_comparison(any_market, OptimalBundling(), 2)
        assert comparison.per_flow.profit == pytest.approx(
            any_market.max_profit()
        )
        assert comparison.tiered.profit <= comparison.per_flow.profit + 1e-9

    def test_profit_gain_nonnegative_for_optimal(self, any_market):
        comparison = welfare_comparison(any_market, OptimalBundling(), 3)
        assert comparison.profit_gain >= -1e-9

    def test_tiering_is_pareto_improvement_under_ced(self, ced_market):
        """The Figure 1 phenomenon survives on a calibrated full market."""
        comparison = welfare_comparison(ced_market, OptimalBundling(), 4)
        assert comparison.pareto_improvement
        assert comparison.welfare_gain > 0

    def test_surplus_capture_defined(self, any_market):
        comparison = welfare_comparison(any_market, ProfitWeightedBundling(), 3)
        assert isinstance(comparison.surplus_capture, float)


class TestCurve:
    def test_curve_length(self, ced_market):
        curve = welfare_curve(ced_market, OptimalBundling(), (1, 2, 3))
        assert len(curve) == 3

    def test_one_tier_equals_blended(self, any_market):
        curve = welfare_curve(any_market, OptimalBundling(), (1,))
        assert curve[0].profit_gain == pytest.approx(0.0, abs=1e-6)
        assert curve[0].surplus_gain == pytest.approx(0.0, abs=1e-6)

    def test_profit_monotone_in_tiers_for_optimal(self, ced_market):
        curve = welfare_curve(ced_market, OptimalBundling(), (1, 2, 3, 4))
        profits = [comparison.tiered.profit for comparison in curve]
        assert all(b >= a - 1e-9 for a, b in zip(profits, profits[1:]))

    def test_render_table(self, ced_market):
        curve = welfare_curve(ced_market, OptimalBundling(), (1, 2))
        text = render_welfare_table(curve)
        assert "blended (baseline)" in text
        assert "per-flow (ceiling)" in text
        assert "optimal" in text
