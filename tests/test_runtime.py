"""Tests for the experiment-execution runtime (parallel/cache/metrics).

The load-bearing guarantees:

* **Determinism** — the same seed yields byte-identical sweep/figure
  output under the serial and process-pool backends, and under cold and
  warm caches.
* **Caching** — warm reruns report hits and build zero new markets; the
  on-disk mirror survives a fresh in-memory store.
* **Instrumentation** — the metrics registry counts what actually
  happened, including work done in worker processes.
"""

import dataclasses
import json

import pytest

import repro.runtime
from repro.config import ExecutorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import figure14_data, theta_sweep
from repro.runtime import cache as runtime_cache
from repro.runtime.cache import CacheStore, config_hash
from repro.runtime.executor import PoolExecutor
from repro.runtime.metrics import METRICS, RESERVOIR_CAPACITY, Metrics
from repro.runtime.spec import ExperimentSpec, evaluate_spec, run_specs

#: Small config so runtime tests stay fast.
TINY = ExperimentConfig(n_flows=24, seed=3, bundle_counts=(1, 2, 3))


@pytest.fixture
def fresh_cache():
    """An empty, enabled, memory-only global cache for the test's duration."""
    runtime_cache.configure(enabled=True, directory="", fresh=True)
    yield
    runtime_cache.configure(enabled=True, directory="", fresh=True)


def _square(x):
    """Module-level so the process-pool backend can pickle it."""
    return x * x


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2.5}) == config_hash({"b": 2.5, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash({"theta": 0.1}) != config_hash({"theta": 0.2})

    def test_tuples_and_lists_agree(self):
        assert config_hash({"b": (1, 2)}) == config_hash({"b": [1, 2]})

    def test_float_precision_matters(self):
        assert config_hash(0.1) != config_hash(0.1 + 1e-12)


class TestCacheStore:
    def test_memory_roundtrip(self):
        store = CacheStore()
        assert store.get("kind", "k") == (False, None)
        store.put("kind", "k", {"v": 1})
        assert store.get("kind", "k") == (True, {"v": 1})

    def test_disk_mirror_survives_new_store(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("result", "abc", [1, 2, 3])
        reborn = CacheStore(tmp_path)
        assert reborn.get("result", "abc") == (True, [1, 2, 3])

    def test_disk_false_stays_memory_only(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("market", "abc", {"big": True}, disk=False)
        reborn = CacheStore(tmp_path)
        assert reborn.get("market", "abc") == (False, None)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("result", "abc", [1])
        path = tmp_path / "result" / "abc.pkl"
        path.write_bytes(b"not a pickle")
        assert CacheStore(tmp_path).get("result", "abc") == (False, None)


def _jobs(jobs=None):
    """The worker count the executors would use — the resolve_jobs heir."""
    return ExecutorConfig.resolve(jobs=jobs).worker_count()


class TestPoolMap:
    def test_serial_preserves_order(self):
        assert PoolExecutor(jobs=1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_pool_matches_serial(self):
        items = list(range(20))
        serial = PoolExecutor(jobs=1).map(_square, items)
        parallel = PoolExecutor(jobs=2).map(_square, items)
        assert parallel == serial

    def test_parallelmap_shim_removed(self):
        # The one-release deprecation shim is gone; the pool backend is
        # the only spelling of the process-map engine.
        with pytest.raises(ImportError):
            from repro.runtime.parallel import ParallelMap  # noqa: F401
        assert "ParallelMap" not in repro.runtime.__all__

    def test_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert _jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert _jobs(None) == 3
        assert _jobs(2) == 2  # explicit argument wins
        monkeypatch.setenv("REPRO_JOBS", "nope")
        with pytest.raises(ValueError):
            _jobs(None)

    def test_jobs_garbage_env_is_named_error(self, monkeypatch):
        from repro.errors import ConfigurationError, ReproError

        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS.*'auto'"):
            _jobs(None)
        # The named error is part of the library hierarchy, so callers
        # catching ReproError see it too.
        with pytest.raises(ReproError):
            _jobs(None)

    def test_jobs_whitespace_env(self, monkeypatch):
        # Pure whitespace counts as unset; padded integers still parse.
        monkeypatch.setenv("REPRO_JOBS", "   ")
        assert _jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "  4  ")
        assert _jobs(None) == 4
        monkeypatch.setenv("REPRO_JOBS", "\t2\n")
        assert _jobs(None) == 2

    def test_zero_means_all_cores(self):
        import os

        assert _jobs(0) == (os.cpu_count() or 1)


class TestMetrics:
    def test_counters_and_stages(self):
        m = Metrics()
        m.incr("x")
        m.incr("x", 2)
        with m.stage("s"):
            pass
        snap = m.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["stages"]["s"]["calls"] == 1

    def test_merge_adds(self):
        a, b = Metrics(), Metrics()
        a.incr("x")
        b.incr("x", 4)
        b.observe("s", 0.5)
        a.merge(b.snapshot())
        assert a.counter("x") == 5
        assert a.stage_seconds("s") == pytest.approx(0.5)

    def test_to_json_roundtrips(self):
        m = Metrics()
        m.incr("x")
        payload = json.loads(m.to_json(extra_field=7))
        assert payload["counters"]["x"] == 1
        assert payload["extra_field"] == 7

    def test_worker_metrics_reach_parent(self, fresh_cache):
        """Markets built inside pool workers are counted in the parent."""
        METRICS.reset()
        specs = [
            ExperimentSpec.from_config(TINY, d, family="ced")
            for d in ("eu_isp", "cdn", "internet2")
        ]
        run_specs(specs, jobs=2, use_cache=False)
        assert METRICS.counter("markets_built") >= 3


class TestLatencyReservoirs:
    def test_observe_and_quantiles(self):
        m = Metrics()
        for ms in range(1, 101):  # 1..100 ms
            m.observe_latency("req", ms / 1000.0)
        q = m.latency_quantiles("req")
        assert q["p50"] == pytest.approx(0.050)
        assert q["p95"] == pytest.approx(0.095)
        assert q["p99"] == pytest.approx(0.099)
        assert q["max"] == pytest.approx(0.100)
        assert m.latency_count("req") == 100

    def test_unseen_series_is_empty(self):
        m = Metrics()
        assert m.latency_quantiles("nope") == {}
        assert m.latency_count("nope") == 0

    def test_reservoir_is_bounded(self):
        """Counts keep growing but memory does not: old samples rotate out."""
        m = Metrics()
        n = RESERVOIR_CAPACITY + 500
        for i in range(n):
            m.observe_latency("req", float(i))
        assert m.latency_count("req") == n
        snap = m.snapshot()
        retained = snap["latencies"]["req"]["samples"]
        assert len(retained) == RESERVOIR_CAPACITY
        # The most recent sample is retained; the very first rotated out.
        assert float(n - 1) in retained
        assert 0.0 not in retained

    def test_latency_context_manager_records_a_sample(self):
        m = Metrics()
        with m.latency("block"):
            pass
        assert m.latency_count("block") == 1
        assert m.latency_quantiles("block")["max"] >= 0.0

    def test_to_json_exports_quantile_summaries(self):
        m = Metrics()
        for ms in (1, 2, 3, 4, 5):
            m.observe_latency("req", ms / 1000.0)
        payload = json.loads(m.to_json())
        entry = payload["latencies"]["req"]
        assert entry["count"] == 5
        assert set(entry) == {"count", "p50", "p95", "p99", "max"}
        assert entry["p50"] == pytest.approx(0.003)
        assert "samples" not in entry  # raw samples stay out of the JSON

    def test_merge_folds_latency_samples_and_counts(self):
        a, b = Metrics(), Metrics()
        a.observe_latency("req", 0.010)
        for _ in range(RESERVOIR_CAPACITY + 10):
            b.observe_latency("req", 0.020)
        a.merge(b.snapshot())
        # True observation count survives even though the ring dropped
        # some of b's samples before the merge.
        assert a.latency_count("req") == 1 + RESERVOIR_CAPACITY + 10
        assert a.latency_quantiles("req")["max"] == pytest.approx(0.020)


class TestSpec:
    def test_from_config_carries_parameters(self):
        spec = ExperimentSpec.from_config(TINY, "cdn", family="logit")
        assert spec.dataset == "cdn"
        assert spec.n_flows == TINY.n_flows
        assert spec.seed == TINY.seed
        assert spec.bundle_counts == TINY.bundle_counts

    def test_digest_ignores_field_order_not_values(self):
        a = ExperimentSpec.from_config(TINY, "eu_isp")
        b = ExperimentSpec.from_config(TINY, "eu_isp")
        c = ExperimentSpec.from_config(TINY, "eu_isp", alpha=2.0)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_market_key_excludes_strategies(self):
        a = ExperimentSpec.from_config(TINY, "eu_isp", strategies=("optimal",))
        b = ExperimentSpec.from_config(
            TINY, "eu_isp", strategies=("profit-weighted",)
        )
        assert a.market_key() == b.market_key()
        assert a.digest() != b.digest()

    def test_unknown_family_and_cost_model(self):
        with pytest.raises(ValueError, match="unknown demand family"):
            ExperimentSpec.from_config(TINY, "eu_isp", family="cobb").demand_model()
        with pytest.raises(ValueError, match="unknown cost model"):
            ExperimentSpec.from_config(
                TINY, "eu_isp", cost_model="quadratic"
            ).cost_model_instance()

    def test_evaluate_spec_is_plain_data(self, fresh_cache):
        result = evaluate_spec(ExperimentSpec.from_config(TINY, "eu_isp"))
        json.dumps(result)  # floats/lists/dicts only
        assert result["capture"]["profit-weighted"][0] == pytest.approx(0.0, abs=1e-9)


class TestDeterminism:
    def test_serial_vs_parallel_sweep_identical(self, fresh_cache):
        """Same seed => byte-identical figure output under both backends."""
        serial = figure14_data(alphas=(1.2, 2.0), config=TINY)
        runtime_cache.configure(fresh=True)
        parallel = figure14_data(
            alphas=(1.2, 2.0), config=dataclasses.replace(TINY, jobs=2)
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_cold_vs_warm_cache_identical(self, fresh_cache):
        cold = theta_sweep("linear", config=TINY, thetas=(0.1, 0.2))
        warm = theta_sweep("linear", config=TINY, thetas=(0.1, 0.2))
        assert json.dumps(cold, sort_keys=True) == json.dumps(
            warm, sort_keys=True
        )

    def test_cache_disabled_identical(self, fresh_cache):
        cached_run = theta_sweep("linear", config=TINY, thetas=(0.1,))
        uncached = theta_sweep(
            "linear", config=dataclasses.replace(TINY, cache=False), thetas=(0.1,)
        )
        assert json.dumps(cached_run, sort_keys=True) == json.dumps(
            uncached, sort_keys=True
        )

    def test_disk_cache_identical_across_stores(self, fresh_cache, tmp_path):
        """A run served from the on-disk mirror matches the original."""
        runtime_cache.configure(directory=tmp_path)
        cold = figure14_data(alphas=(1.2,), config=TINY)
        # New in-memory world, same disk: results come from the mirror.
        runtime_cache.configure(directory=tmp_path, fresh=True)
        METRICS.reset()
        warm = figure14_data(alphas=(1.2,), config=TINY)
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
        assert METRICS.counter("markets_built") == 0


class TestWarmCacheCounters:
    def test_warm_rerun_hits_per_pair_and_builds_nothing(self, fresh_cache):
        """>= 1 result hit per (dataset, family) pair, zero new markets."""
        figure14_data(alphas=(1.2, 2.0), config=TINY)
        METRICS.reset()
        figure14_data(alphas=(1.2, 2.0), config=TINY)
        counters = METRICS.snapshot()["counters"]
        assert counters.get("markets_built", 0) == 0
        assert counters.get("datasets_generated", 0) == 0
        # 2 families x 3 datasets x 2 alphas = 12 work units, all hits.
        assert counters.get("cache_hits:result", 0) == 12
        assert counters.get("cache_misses", 0) == 0

    def test_market_shared_across_strategies(self, fresh_cache):
        """Two specs differing only in strategy share one market."""
        METRICS.reset()
        base = ExperimentSpec.from_config(TINY, "eu_isp")
        evaluate_spec(base)
        built = METRICS.counter("markets_built")
        evaluate_spec(
            ExperimentSpec.from_config(TINY, "eu_isp", strategies=("optimal",))
        )
        assert METRICS.counter("markets_built") == built
