"""Tests for the streaming repricing pipeline (sources, queue, windows,
repricer, checkpoint/restore, CLI)."""

import dataclasses

import pytest

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.flow import FlowSet
from repro.errors import ConfigurationError, DataError
from repro.netflow.records import FlowKey, NetFlowRecord, PROTO_TCP
from repro.stream import (
    BoundedQueue,
    DemandShift,
    DesignPublication,
    OnlineRepricer,
    STATUS_EMPTY,
    STATUS_PRICED,
    StreamConfig,
    StreamingPipeline,
    TraceReplaySource,
    V5PacketSource,
    WindowBounds,
    Windower,
    aggregate_by_destination,
)
from repro.stream.window import ClosedWindow
from repro.synth.trace import generate_network_trace

P0 = 20.0


def key(n=1):
    return FlowKey(
        src_addr=f"1.0.0.{n}",
        dst_addr=f"2.0.0.{n}",
        src_port=40000,
        dst_port=443,
        protocol=PROTO_TCP,
    )


def record(k, first, last, octets=8000, router="R1"):
    return NetFlowRecord(
        key=k,
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=first,
        last_ms=last,
        router=router,
    )


@pytest.fixture(scope="module")
def trace():
    return generate_network_trace(
        "eu_isp", n_flows=40, seed=11, duration_seconds=1800.0
    )


@pytest.fixture(scope="module")
def source(trace):
    return TraceReplaySource(trace, export_interval_ms=60_000)


def make_pipeline(source, trace, checkpoint_path=None, **overrides):
    defaults = dict(window_ms=600_000, drift_threshold=0.1)
    defaults.update(overrides)
    return StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=CEDDemand(alpha=1.1),
        cost_model=LinearDistanceCost(theta=0.2),
        config=StreamConfig(**defaults),
        checkpoint_path=checkpoint_path,
    )


class TestBoundedQueue:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue(0)
        with pytest.raises(ConfigurationError, match="policy"):
            BoundedQueue(4, policy="spill")

    def test_block_policy_refuses_when_full(self):
        q = BoundedQueue(2, policy="block")
        assert q.offer(record(key(1), 0, 1))
        assert q.offer(record(key(2), 0, 2))
        assert not q.offer(record(key(3), 0, 3))
        assert q.blocked == 1
        assert q.dropped == 0
        assert [r.last_ms for r in q.drain()] == [1, 2]
        assert q.offer(record(key(3), 0, 3))

    def test_drop_oldest_policy_sheds_head(self):
        q = BoundedQueue(2, policy="drop-oldest")
        for n in (1, 2, 3):
            assert q.offer(record(key(n), 0, n))
        assert q.dropped == 1
        assert [r.last_ms for r in q.drain()] == [2, 3]

    def test_on_evict_sees_each_shed_item(self):
        """Shed items are handed to the hook, not silently lost — the
        quote server uses this to answer evicted requests degraded."""
        q = BoundedQueue(2, policy="drop-oldest")
        evicted = []
        q.on_evict = evicted.append
        for n in (1, 2, 3, 4):
            assert q.offer(record(key(n), 0, n))
        assert [r.last_ms for r in evicted] == [1, 2]
        assert q.dropped == 2
        assert [r.last_ms for r in q.drain()] == [3, 4]

    def test_on_evict_not_called_under_block_policy(self):
        q = BoundedQueue(1, policy="block")
        evicted = []
        q.on_evict = evicted.append
        assert q.offer(record(key(1), 0, 1))
        assert not q.offer(record(key(2), 0, 2))
        assert evicted == []

    def test_snapshot_and_restore(self):
        q = BoundedQueue(4)
        q.offer(record(key(1), 0, 1))
        snap = q.snapshot()
        assert len(q) == 1  # snapshot is non-destructive
        q2 = BoundedQueue(4)
        q2.restore(snap, {"dropped": 2, "blocked": 1, "high_watermark": 3})
        assert len(q2) == 1
        assert q2.dropped == 2
        with pytest.raises(ConfigurationError):
            BoundedQueue(1).restore([record(key(1), 0, 1)] * 2)


class TestWindower:
    def test_tumbling_assignment_and_close(self):
        w = Windower(window_ms=100)
        assert w.ingest(record(key(1), 0, 10)) == []
        closed = w.ingest(record(key(2), 100, 105))
        assert len(closed) == 1
        assert closed[0].bounds == WindowBounds(0, 100)
        assert [r.last_ms for r in closed[0].records] == [10]
        final = w.flush()
        assert len(final) == 1
        assert [r.last_ms for r in final[0].records] == [105]

    def test_boundary_straddling_record_lands_by_export_time(self):
        # A flow active across the boundary is exported once, at its end:
        # it belongs to the window containing last_ms, not first_ms.
        w = Windower(window_ms=100)
        closed = list(w.ingest(record(key(1), 60, 130)))
        closed += w.ingest(record(key(2), 250, 260))  # closes [0,100), [100,200)
        closed += w.flush()
        by_start = {c.bounds.start_ms: c for c in closed}
        assert [r.last_ms for r in by_start[100].records] == [130]
        # No window keyed by first_ms: 0 is before the first covering window.
        assert 0 not in by_start

    def test_exact_boundary_timestamp_is_next_window(self):
        w = Windower(window_ms=100)
        w.ingest(record(key(1), 90, 100))  # end-exclusive: window [100, 200)
        closed = {c.bounds.start_ms: c for c in w.flush()}
        assert closed[100].n_records == 1

    def test_sliding_windows_overlap(self):
        w = Windower(window_ms=100, slide_ms=50)
        w.ingest(record(key(1), 60, 70))
        starts = [c.bounds.start_ms for c in w.flush()]
        assert starts == [0, 50]
        # The record is in both windows covering t=70.

    def test_sliding_membership(self):
        w = Windower(window_ms=100, slide_ms=50)
        closed = list(w.ingest(record(key(1), 60, 70)))
        closed += w.ingest(record(key(2), 150, 160))
        closed += w.flush()
        by_start = {c.bounds.start_ms: c for c in closed}
        assert [r.last_ms for r in by_start[0].records] == [70]
        assert [r.last_ms for r in by_start[50].records] == [70]
        assert [r.last_ms for r in by_start[100].records] == [160]
        assert [r.last_ms for r in by_start[150].records] == [160]

    def test_out_of_order_within_tolerance(self):
        w = Windower(window_ms=100, reorder_tolerance_ms=50)
        w.ingest(record(key(1), 0, 120))
        # 95 arrives after 120 but within the 50 ms tolerance: the
        # watermark (120 - 50 = 70) has not passed [0, 100) yet.
        closed = w.ingest(record(key(2), 0, 95))
        assert closed == []
        closed = w.ingest(record(key(3), 0, 155))  # watermark 105: close [0,100)
        assert len(closed) == 1
        assert [r.last_ms for r in closed[0].records] == [95]
        assert w.late_dropped == 0

    def test_late_beyond_tolerance_dropped(self):
        w = Windower(window_ms=100, reorder_tolerance_ms=0)
        closed = list(w.ingest(record(key(1), 0, 10)))
        closed += w.ingest(record(key(2), 200, 250))  # closes [0, 100)
        assert w.ingest(record(key(3), 0, 20)) == []
        assert w.late_dropped == 1
        # The late record appears in no window.
        closed += w.flush()
        all_records = [r for c in closed for r in c.records]
        assert {r.last_ms for r in all_records} == {10, 250}

    def test_empty_windows_emitted_for_gaps(self):
        w = Windower(window_ms=100)
        w.ingest(record(key(1), 0, 10))
        closed = w.ingest(record(key(2), 350, 360))
        statuses = [(c.bounds.start_ms, c.n_records) for c in closed]
        assert statuses == [(0, 1), (100, 0), (200, 0)]

    def test_eviction_keeps_buffer_bounded(self):
        w = Windower(window_ms=100)
        for i in range(50):
            w.ingest(record(key(i % 5), i * 40, i * 40 + 5))
        assert w.pending_count <= 5

    def test_flowset_on_empty_window_raises(self):
        window = ClosedWindow(WindowBounds(0, 100), records=())
        with pytest.raises(DataError):
            window.flowset(lambda k: 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Windower(0)
        with pytest.raises(ConfigurationError):
            Windower(100, slide_ms=200)
        with pytest.raises(ConfigurationError):
            Windower(100, reorder_tolerance_ms=-1)


class TestTraceReplaySource:
    def test_conserves_counters_per_router(self, trace, source):
        original = {}
        for r in trace.records:
            group = original.setdefault((r.key, r.router), [0, 0])
            group[0] += r.octets
            group[1] += r.packets
        replayed = {}
        for r in source:
            group = replayed.setdefault((r.key, r.router), [0, 0])
            group[0] += r.octets
            group[1] += r.packets
        assert replayed.keys() == original.keys()
        for group_key, (octets, packets) in original.items():
            assert replayed[group_key][0] == octets
            # Packet slices that round to zero octets are skipped.
            assert replayed[group_key][1] <= packets

    def test_time_ordered_and_deterministic(self, source):
        first = list(source)
        assert [r.last_ms for r in first] == sorted(r.last_ms for r in first)
        assert list(source) == first

    def test_chunks_respect_export_interval(self, source):
        assert all(r.duration_ms < 60_000 for r in source)

    def test_demand_shift_scales_selected_keys_after_onset(self, trace):
        base = TraceReplaySource(trace, export_interval_ms=60_000)
        shift = DemandShift(at_ms=900_000, factor=3.0, fraction=0.5)
        shifted = TraceReplaySource(trace, export_interval_ms=60_000, shift=shift)
        selected = shift.selected_keys(r.key for r in trace.records)
        base_records = list(base)
        shifted_records = list(shifted)

        def volume(records, predicate):
            return sum(r.octets for r in records if predicate(r))

        # Before onset: identical.
        assert volume(shifted_records, lambda r: r.first_ms < 900_000) == volume(
            base_records, lambda r: r.first_ms < 900_000
        )
        # After onset: selected keys scale, unselected don't.
        after_sel = volume(
            base_records,
            lambda r: r.first_ms >= 900_000 and r.key in selected,
        )
        assert volume(
            shifted_records,
            lambda r: r.first_ms >= 900_000 and r.key in selected,
        ) == pytest.approx(3.0 * after_sel, rel=0.01)
        after_other = lambda r: r.first_ms >= 900_000 and r.key not in selected
        assert volume(shifted_records, after_other) == volume(
            base_records, after_other
        )

    def test_shift_validation(self):
        with pytest.raises(DataError):
            DemandShift(at_ms=-1, factor=2.0)
        with pytest.raises(DataError):
            DemandShift(at_ms=0, factor=0.0)
        with pytest.raises(DataError):
            DemandShift(at_ms=0, factor=2.0, fraction=0.0)

    def test_v5_packet_source_round_trips(self, trace, source):
        # Encode the export-interval slices (30-minute batch records
        # overflow v5's 32-bit counters) and decode them back.
        from repro.netflow.codec import EngineMap, encode_packets

        exported = list(source)
        routers = sorted({r.router for r in exported})
        engines = EngineMap(routers)
        packets = encode_packets(exported, engines)
        decoded = list(V5PacketSource(packets, engines))
        assert len(decoded) == len(exported)
        assert {r.key for r in decoded} == {r.key for r in exported}
        assert sum(r.octets for r in decoded) == sum(r.octets for r in exported)


class TestOnlineRepricer:
    def _repricer(self, **kwargs):
        return OnlineRepricer(
            CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), P0, **kwargs
        )

    def _flows(self, demands, scale=1.0):
        return FlowSet(
            demands_mbps=[d * scale for d in demands],
            distances_miles=[10.0, 100.0, 400.0, 1200.0, 2500.0],
            dsts=[f"2.0.0.{i}" for i in range(len(demands))],
        )

    def test_first_window_derives_initial_design(self):
        repricer = self._repricer(n_tiers=2)
        window = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        result = repricer.price_window(window, self._flows([90, 50, 20, 8, 2]))
        assert result.status == STATUS_PRICED
        assert result.retier and result.reason == "initial design"
        assert repricer.design is not None
        assert result.n_tiers == repricer.design.n_tiers

    def test_stationary_window_keeps_design(self):
        repricer = self._repricer(n_tiers=2)
        flows = self._flows([90, 50, 20, 8, 2])
        w = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        repricer.price_window(w, flows)
        design = repricer.design
        result = repricer.price_window(
            ClosedWindow(WindowBounds(100, 200), (record(key(1), 100, 110),)),
            flows,
        )
        assert not result.retier
        assert result.capture_drop == pytest.approx(0.0, abs=1e-9)
        assert repricer.design is design  # untouched

    def test_uniform_growth_does_not_retier(self):
        repricer = self._repricer(n_tiers=2)
        w = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        repricer.price_window(w, self._flows([90, 50, 20, 8, 2]))
        result = repricer.price_window(
            ClosedWindow(WindowBounds(100, 200), (record(key(1), 100, 110),)),
            self._flows([90, 50, 20, 8, 2], scale=2.0),
        )
        assert not result.retier

    def test_degenerate_window_is_skipped_not_fatal(self):
        repricer = self._repricer()
        window = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        # A single flow cannot support a 3-tier profit-weighted design
        # calibration/bundling failure must not kill the stream.
        result = repricer.price_window(
            window,
            FlowSet(demands_mbps=[10.0], distances_miles=[0.0], dsts=["2.0.0.1"]),
        )
        assert result.status in ("priced", "skipped")

    def test_empty_window_no_retier(self):
        repricer = self._repricer()
        result = repricer.empty_window(ClosedWindow(WindowBounds(0, 100), ()))
        assert result.status == STATUS_EMPTY
        assert not result.retier
        assert repricer.design is None

    def test_accepted_retier_publishes_design(self):
        repricer = self._repricer(n_tiers=2)
        published = []
        repricer.on_design_published = published.append
        flows = self._flows([90, 50, 20, 8, 2])
        w1 = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        repricer.price_window(w1, flows)
        assert len(published) == 1
        pub = published[0]
        assert isinstance(pub, DesignPublication)
        assert pub.design is repricer.design
        assert pub.sequence == 1
        assert pub.window_end_ms == 100
        assert pub.blended_rate == pytest.approx(P0)
        assert pub.gamma > 0
        assert pub.reference_distance_miles == pytest.approx(2500.0)
        # A stationary window keeps the design: nothing new published.
        repricer.price_window(
            ClosedWindow(WindowBounds(100, 200), (record(key(1), 100, 110),)),
            flows,
        )
        assert len(published) == 1

    def test_failing_subscriber_does_not_kill_the_stream(self):
        from repro.runtime.metrics import METRICS

        repricer = self._repricer(n_tiers=2)

        def explode(_publication):
            raise RuntimeError("subscriber bug")

        repricer.on_design_published = explode
        before = METRICS.counter("stream.publish_errors")
        w = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        result = repricer.price_window(w, self._flows([90, 50, 20, 8, 2]))
        assert result.status == STATUS_PRICED  # pricing itself survived
        assert repricer.design is not None
        assert METRICS.counter("stream.publish_errors") == before + 1

    def test_subscribe_fans_out_to_every_subscriber(self):
        repricer = self._repricer(n_tiers=2)
        hook, first, second = [], [], []
        repricer.on_design_published = hook.append
        repricer.subscribe(first.append)
        second_sink = second.append
        assert repricer.subscribe(second_sink) is second_sink  # decorator
        w = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        repricer.price_window(w, self._flows([90, 50, 20, 8, 2]))
        assert len(hook) == len(first) == len(second) == 1
        assert hook[0] is first[0] is second[0]

    def test_one_failing_subscriber_does_not_starve_the_rest(self):
        from repro.runtime.metrics import METRICS

        repricer = self._repricer(n_tiers=2)
        delivered = []

        def explode(_publication):
            raise RuntimeError("subscriber bug")

        repricer.subscribe(explode)
        repricer.subscribe(delivered.append)
        before = METRICS.counter("stream.publish_errors")
        w = ClosedWindow(WindowBounds(0, 100), (record(key(1), 0, 10),))
        result = repricer.price_window(w, self._flows([90, 50, 20, 8, 2]))
        assert result.status == STATUS_PRICED
        assert len(delivered) == 1  # the healthy subscriber still got it
        assert METRICS.counter("stream.publish_errors") == before + 1

    def test_aggregate_by_destination_merges(self):
        flows = FlowSet(
            demands_mbps=[30.0, 10.0, 5.0],
            distances_miles=[100.0, 500.0, 50.0],
            dsts=["2.0.0.1", "2.0.0.1", "2.0.0.2"],
        )
        merged = aggregate_by_destination(flows)
        assert len(merged) == 2
        assert merged.dsts == ("2.0.0.1", "2.0.0.2")
        assert merged.demands[0] == pytest.approx(40.0)
        # Demand-weighted distance: (30*100 + 10*500) / 40 = 200.
        assert merged.distances[0] == pytest.approx(200.0)

    def test_aggregate_passthrough_without_dsts(self, small_flows):
        assert aggregate_by_destination(small_flows) is small_flows


class TestPipelineEndToEnd:
    def test_replay_is_deterministic(self, source, trace):
        first = make_pipeline(source, trace).run()
        second = make_pipeline(source, trace).run()
        assert first.profit_series() == second.profit_series()
        assert first.results == second.results
        assert first.design.rates == second.design.rates
        assert (
            first.design.tier_of_destination == second.design.tier_of_destination
        )

    def test_kill_checkpoint_restore_is_identical(self, source, trace, tmp_path):
        baseline = make_pipeline(source, trace).run()
        ckpt = tmp_path / "stream.ckpt.json"
        partial = make_pipeline(source, trace, checkpoint_path=ckpt).run(
            max_windows=2
        )
        assert len(partial.results) == 2
        assert ckpt.exists()
        # "Restart the process": a fresh pipeline restores and finishes.
        resumed = make_pipeline(source, trace, checkpoint_path=ckpt).run()
        assert resumed.profit_series() == baseline.profit_series()
        assert resumed.results == baseline.results
        assert resumed.design.rates == baseline.design.rates
        assert (
            resumed.design.tier_of_destination
            == baseline.design.tier_of_destination
        )

    def test_checkpoint_config_mismatch_refused(self, source, trace, tmp_path):
        ckpt = tmp_path / "stream.ckpt.json"
        make_pipeline(source, trace, checkpoint_path=ckpt).run(max_windows=1)
        with pytest.raises(ConfigurationError, match="configuration"):
            make_pipeline(
                source, trace, checkpoint_path=ckpt, window_ms=300_000
            )

    def test_stationary_stream_only_initial_retier(self, source, trace):
        report = make_pipeline(source, trace).run()
        assert report.windows_priced >= 2
        assert report.retier_events == 1  # the bootstrap design only
        assert report.results[0].retier

    def test_demand_shift_triggers_retier(self, trace):
        shifted = TraceReplaySource(
            trace,
            export_interval_ms=60_000,
            shift=DemandShift(at_ms=900_000, factor=8.0, fraction=0.3),
        )
        report = make_pipeline(shifted, trace).run()
        assert report.retier_events >= 2
        drifted = [
            r for r in report.results[1:] if r.retier and r.start_ms >= 600_000
        ]
        assert drifted, "shift after 900s must re-tier a later window"
        assert all(r.capture_drop > 0.1 for r in drifted)

    def test_drop_oldest_sheds_but_completes(self, source, trace):
        report = make_pipeline(
            source, trace, queue_capacity=100, queue_policy="drop-oldest"
        ).run()
        assert report.queue_dropped > 0
        assert report.windows_priced >= 1

    def test_block_policy_never_drops(self, source, trace):
        report = make_pipeline(source, trace, queue_capacity=100).run()
        assert report.queue_dropped == 0
        assert report.queue_blocked > 0
        total_records = sum(r.n_records for r in report.results)
        assert total_records == report.records_consumed - report.late_dropped

    def test_sliding_windows_price_overlaps(self, source, trace):
        report = make_pipeline(
            source, trace, window_ms=600_000, slide_ms=300_000
        ).run()
        starts = [r.start_ms for r in report.results]
        assert starts == sorted(starts)
        assert any(b - a == 300_000 for a, b in zip(starts, starts[1:]))

    def test_render_mentions_retier(self, source, trace):
        text = make_pipeline(source, trace).run().render()
        assert "RE-TIER" in text
        assert "windows:" in text


class TestStreamCLI:
    def test_stream_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            [
                "--flows",
                "30",
                "--seed",
                "5",
                "stream",
                "eu_isp",
                "--window",
                "600",
                "--duration",
                "1200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "windows:" in out
        assert "TierDesign" in out

    def test_stream_emits_metrics(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "stream.metrics.json"
        code = main(
            [
                "--flows",
                "30",
                "stream",
                "eu_isp",
                "--window",
                "600",
                "--duration",
                "1200",
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        capsys.readouterr()
        import json

        payload = json.loads(metrics.read_text())
        assert payload["counters"]["stream.windows_priced"] >= 1
        assert payload["counters"]["stream.records"] > 0


def test_window_result_round_trips_through_checkpoint():
    from repro.stream.checkpoint import (
        PipelineCheckpoint,
        checkpoint_from_json,
        checkpoint_to_json,
    )
    from repro.stream.repricer import WindowResult

    result = WindowResult(
        start_ms=0,
        end_ms=600_000,
        status=STATUS_PRICED,
        n_records=10,
        n_flows=4,
        retier=True,
        reason="initial design",
        stale_profit=None,
        refreshed_profit=123456.789012345,
        capture_drop=None,
        n_tiers=3,
    )
    checkpoint = PipelineCheckpoint(
        config_digest="d",
        records_consumed=42,
        windower_state={
            "next_start": 600_000,
            "max_ts": 700_000,
            "late_dropped": 1,
            "pending": [record(key(1), 610_000, 620_000)],
        },
        queued_records=[record(key(2), 630_000, 640_000)],
        queue_counters={"dropped": 0, "blocked": 0, "high_watermark": 5},
        design=None,
        results=[result],
    )
    restored = checkpoint_from_json(checkpoint_to_json(checkpoint), "d")
    assert restored.results == [result]
    assert restored.windower_state["pending"] == [
        record(key(1), 610_000, 620_000)
    ]
    assert restored.queued_records == [record(key(2), 630_000, 640_000)]
    with pytest.raises(ConfigurationError):
        checkpoint_from_json(checkpoint_to_json(checkpoint), "other")
