"""Columnar-vs-legacy equivalence for the struct-of-arrays core.

The columnar refactor replaced per-object Python (``Flow`` dataclasses,
label tuples, per-flow loops) with numpy code columns and grouped
reductions.  These tests pin the refactor down:

* a market built from ``Flow`` objects (the legacy per-object path,
  ``FlowSet.from_flows``) and one built straight from columns
  (``FlowSet.from_columns``) agree to atol=1e-9 on CED/logit profit, all
  six bundling strategies, and welfare — including region- and
  class-labeled markets;
* the vectorized token-bucket and contiguous-DP algorithms reproduce
  their retained per-flow reference implementations exactly;
* ``repro.synth`` emits a 10^6-flow dataset without constructing any
  ``Flow`` object;
* ``FlowSet.from_flows`` takes the pre-validated fast path (no
  re-validation of already-validated records);
* ``OptimalBundling`` refuses oversized inputs with ``DataError`` instead
  of hanging.
"""

import numpy as np
import pytest

import repro.core.flow as flow_module
from repro.core.bundling import (
    BundlingInputs,
    DEFAULT_MAX_OPTIMAL_FLOWS,
    OptimalBundling,
    _contiguous_dp,
    _contiguous_dp_reference,
    _token_bucket_reference,
    paper_strategies,
    token_bucket_partition,
)
from repro.core.ced import CEDDemand
from repro.core.cost import DestinationTypeCost, LinearDistanceCost, RegionalCost
from repro.core.flow import Flow, FlowSet, FlowTable, VALID_REGIONS
from repro.core.linear import LinearDemand
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.core.welfare import welfare_comparison
from repro.errors import DataError
from repro.runtime import cache
from repro.synth.datasets import generate_flow_table

ATOL = 1e-9


def random_columns(seed, n=60, labeled=False):
    rng = np.random.default_rng(seed)
    demands = rng.lognormal(mean=2.0, sigma=1.3, size=n)
    distances = rng.lognormal(mean=4.0, sigma=0.8, size=n)
    region_codes = None
    if labeled:
        region_codes = rng.integers(0, len(VALID_REGIONS), size=n).astype(np.int32)
    return demands, distances, region_codes


def market_pair(seed, demand_model, cost_model, labeled=False):
    """The same market built per-object and columnar."""
    demands, distances, region_codes = random_columns(seed, labeled=labeled)
    columnar = FlowSet.from_columns(
        demands.copy(), distances.copy(), region_codes=region_codes
    )
    regions = (
        None
        if region_codes is None
        else [VALID_REGIONS[c] for c in region_codes]
    )
    legacy = FlowSet.from_flows(
        Flow(
            demand_mbps=float(demands[i]),
            distance_miles=float(distances[i]),
            region=None if regions is None else regions[i],
        )
        for i in range(demands.size)
    )
    return (
        Market(legacy, demand_model, cost_model, blended_rate=20.0),
        Market(columnar, demand_model, cost_model, blended_rate=20.0),
    )


DEMAND_MODELS = [CEDDemand(alpha=1.1), LogitDemand(alpha=1.1, s0=0.2)]


class TestMarketEquivalence:
    @pytest.mark.parametrize("model", DEMAND_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_profit_and_calibration_match(self, model, seed):
        legacy, columnar = market_pair(seed, model, LinearDistanceCost(theta=0.2))
        assert columnar.gamma == pytest.approx(legacy.gamma, abs=ATOL)
        assert columnar.valuations == pytest.approx(legacy.valuations, abs=ATOL)
        assert columnar.blended_profit() == pytest.approx(
            legacy.blended_profit(), abs=ATOL * max(1.0, abs(legacy.blended_profit()))
        )
        assert columnar.max_profit() == pytest.approx(
            legacy.max_profit(), abs=ATOL * max(1.0, abs(legacy.max_profit()))
        )

    @pytest.mark.parametrize("model", DEMAND_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("seed", [5, 6])
    def test_all_six_strategies_match(self, model, seed):
        legacy, columnar = market_pair(seed, model, LinearDistanceCost(theta=0.2))
        for strategy in paper_strategies():
            a = legacy.tiered_outcome(strategy, 4)
            b = columnar.tiered_outcome(strategy, 4)
            assert b.profit == pytest.approx(
                a.profit, abs=ATOL * max(1.0, abs(a.profit))
            ), strategy.name
            assert [
                (t.n_flows, pytest.approx(t.demand_mbps), pytest.approx(t.price))
                for t in a.tiers
            ] == [
                (t.n_flows, t.demand_mbps, t.price) for t in b.tiers
            ], strategy.name

    @pytest.mark.parametrize("seed", [7, 8])
    def test_region_labeled_markets_match(self, seed):
        legacy, columnar = market_pair(
            seed, CEDDemand(alpha=1.1), RegionalCost(theta=1.1), labeled=True
        )
        assert columnar.classes == legacy.classes
        for strategy in paper_strategies(class_aware=True)[1:3]:
            a = legacy.tiered_outcome(strategy, 4)
            b = columnar.tiered_outcome(strategy, 4)
            assert b.profit == pytest.approx(
                a.profit, abs=ATOL * max(1.0, abs(a.profit))
            ), strategy.name

    @pytest.mark.parametrize("seed", [9, 10])
    def test_class_labeled_markets_match(self, seed):
        legacy, columnar = market_pair(
            seed, LogitDemand(alpha=1.1, s0=0.2), DestinationTypeCost(theta=0.3)
        )
        assert columnar.classes == legacy.classes
        for strategy in paper_strategies(class_aware=True)[1:3]:
            a = legacy.tiered_outcome(strategy, 3)
            b = columnar.tiered_outcome(strategy, 3)
            assert b.profit == pytest.approx(
                a.profit, abs=ATOL * max(1.0, abs(a.profit))
            ), strategy.name

    @pytest.mark.parametrize("model", DEMAND_MODELS, ids=lambda m: m.name)
    def test_welfare_matches(self, model):
        legacy, columnar = market_pair(11, model, LinearDistanceCost(theta=0.2))
        strategy = paper_strategies()[2]  # profit-weighted
        a = welfare_comparison(legacy, strategy, 3)
        b = welfare_comparison(columnar, strategy, 3)
        for side in ("blended", "tiered", "per_flow"):
            x, y = getattr(a, side), getattr(b, side)
            assert y.profit == pytest.approx(
                x.profit, abs=ATOL * max(1.0, abs(x.profit))
            )
            assert y.consumer_surplus == pytest.approx(
                x.consumer_surplus, abs=ATOL * max(1.0, abs(x.consumer_surplus))
            )


class TestVectorizedAlgorithmsMatchReferences:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_bundles", [1, 2, 3, 5, 8])
    def test_token_bucket_matches_reference(self, seed, n_bundles):
        rng = np.random.default_rng(seed)
        weights = rng.lognormal(mean=0.0, sigma=1.5, size=40)
        fast = token_bucket_partition(weights, n_bundles)
        slow = _token_bucket_reference(weights, n_bundles)
        assert [sorted(b.tolist()) for b in fast] == [
            sorted(b.tolist()) for b in slow
        ]

    def test_token_bucket_paper_example(self):
        # Demands (30, 10, 10, 10) into two bundles: {30} and {10, 10, 10}.
        bundles = token_bucket_partition(np.array([30.0, 10.0, 10.0, 10.0]), 2)
        assert [sorted(b.tolist()) for b in bundles] == [[0], [1, 2, 3]]

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("max_bundles", [1, 2, 4, 7])
    def test_contiguous_dp_matches_reference(self, seed, max_bundles):
        rng = np.random.default_rng(100 + seed)
        n = 25
        demands = rng.lognormal(mean=1.0, sigma=0.8, size=n)
        c = np.sort(rng.lognormal(mean=0.0, sigma=0.6, size=n))
        for model in (
            CEDDemand(alpha=1.1),
            LogitDemand(alpha=1.1, s0=0.2),
            LinearDemand(),
        ):
            v = model.fit_valuations(demands, 20.0)
            objective = model.bundle_objective(v, c)
            assert _contiguous_dp(objective, n, max_bundles) == (
                _contiguous_dp_reference(objective, n, max_bundles)
            ), model.name


class TestScaleContract:
    def test_million_flow_dataset_builds_no_flow_objects(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("Flow object constructed on the columnar path")

        monkeypatch.setattr(flow_module.Flow, "__init__", boom)
        cache.configure(enabled=False)
        try:
            table = generate_flow_table("eu_isp", size=1_000_000, seed=33)
        finally:
            cache.configure(enabled=True)
        assert isinstance(table, FlowTable)
        assert len(table) == 1_000_000
        assert table.region_codes is not None
        assert table.demands.flags.writeable is False

    def test_from_flows_skips_array_revalidation(self, monkeypatch):
        calls = []
        original = flow_module._validated_numeric_columns

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            flow_module, "_validated_numeric_columns", counting
        )
        flows = FlowSet.from_flows(
            [
                Flow(demand_mbps=5.0, distance_miles=10.0),
                Flow(demand_mbps=7.0, distance_miles=900.0),
            ]
        )
        # Flow.__post_init__ validated each record; the assembled arrays
        # must not be validated a second time.
        assert not calls
        assert len(flows) == 2

    def test_optimal_bundling_guard(self, ced_model):
        n = 40
        rng = np.random.default_rng(0)
        demands = rng.lognormal(size=n)
        valuations = ced_model.fit_valuations(demands, 20.0)
        costs = np.sort(rng.lognormal(size=n)) + 0.5
        inputs = BundlingInputs(
            model=ced_model,
            demands=demands,
            valuations=valuations,
            costs=costs,
            potential_profits=ced_model.potential_profits(valuations, costs),
        )
        with pytest.raises(DataError, match="optimal bundling"):
            OptimalBundling(max_flows=20).bundle(inputs, 4)
        # The documented default is high enough for real sweeps.
        assert OptimalBundling().max_flows == DEFAULT_MAX_OPTIMAL_FLOWS == 5000
