"""Property-based tests on the measurement/operations substrate.

Counterparts to ``test_properties.py`` (which covers the economics):
longest-prefix matching against a brute-force reference, codec roundtrip
over arbitrary records, token-bucket partition invariants, and billing
percentile monotonicity.
"""

import ipaddress

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.bgp import Community, Route, RoutingTable
from repro.accounting.billing import percentile_mbps
from repro.core.bundling import token_bucket_partition
from repro.netflow.codec import EngineMap, decode_packets, encode_packets
from repro.netflow.records import FlowKey, NetFlowRecord

addresses = st.integers(min_value=0, max_value=2**32 - 1)
prefix_lengths = st.integers(min_value=0, max_value=32)


def network_of(address: int, length: int) -> ipaddress.IPv4Network:
    return ipaddress.IPv4Network((address, length), strict=False)


class TestRoutingTableProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        routes=st.lists(
            st.tuples(addresses, prefix_lengths), min_size=1, max_size=25
        ),
        queries=st.lists(addresses, min_size=1, max_size=10),
    )
    def test_lpm_matches_bruteforce(self, routes, queries):
        rib = RoutingTable()
        table = {}
        for i, (address, length) in enumerate(routes):
            network = network_of(address, length)
            route = Route(prefix=network, next_hop=f"hop{i}")
            rib.insert(route)
            table[network] = route  # same last-wins semantics as the RIB
        for query in queries:
            query_ip = ipaddress.IPv4Address(query)
            candidates = [
                (network.prefixlen, route)
                for network, route in table.items()
                if query_ip in network
            ]
            got = rib.lookup(str(query_ip))
            if not candidates:
                assert got is None
            else:
                best_len = max(length for length, _ in candidates)
                expected = [r for length, r in candidates if length == best_len]
                assert got is not None
                assert got.prefix.prefixlen == best_len
                assert got in expected

    @settings(deadline=None, max_examples=40)
    @given(
        address=addresses,
        length=st.integers(min_value=1, max_value=32),
        tier=st.integers(min_value=1, max_value=9),
    )
    def test_tier_tag_roundtrip(self, address, length, tier):
        network = network_of(address, length)
        route = Route(prefix=network, next_hop="x").with_community(
            Community("tier", 64500, tier)
        )
        rib = RoutingTable()
        rib.insert(route)
        inside = str(network.network_address)
        assert rib.tier_for(inside, 64500) == tier


record_values = st.tuples(
    addresses,
    addresses,
    st.integers(0, 65535),
    st.integers(0, 65535),
    st.integers(0, 255),
    st.integers(1, 2**31),  # octets
    st.integers(0, 2**20),  # first_ms
    st.integers(0, 2**20),  # duration
    st.integers(0, 2),      # router index
    st.sampled_from([1, 10, 100, 1000]),
)


def build_record(values) -> NetFlowRecord:
    src, dst, sport, dport, proto, octets, first, duration, router, interval = values
    return NetFlowRecord(
        key=FlowKey(
            src_addr=str(ipaddress.IPv4Address(src)),
            dst_addr=str(ipaddress.IPv4Address(dst)),
            src_port=sport,
            dst_port=dport,
            protocol=proto,
        ),
        octets=octets,
        packets=max(1, octets // 800),
        first_ms=first,
        last_ms=first + duration,
        router=("R1", "R2", "R3")[router],
        input_if=1,
        output_if=2,
        sampling_interval=interval,
    )


class TestCodecProperties:
    @settings(deadline=None, max_examples=50)
    @given(values=st.lists(record_values, min_size=1, max_size=80))
    def test_roundtrip_is_identity_up_to_order(self, values):
        records = [build_record(v) for v in values]
        engines = EngineMap(["R1", "R2", "R3"])
        decoded = decode_packets(encode_packets(records, engines), engines)

        def key(r):
            # Total order over every encoded field, so records that differ
            # only in (say) sampling interval cannot interleave.
            return (
                r.router,
                r.sampling_interval,
                r.key.src_addr,
                r.key.dst_addr,
                r.key.src_port,
                r.key.dst_port,
                r.key.protocol,
                r.octets,
                r.packets,
                r.first_ms,
                r.last_ms,
            )

        assert sorted(decoded, key=key) == sorted(records, key=key)


class TestTokenBucketProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50
        ),
        n_bundles=st.integers(min_value=1, max_value=8),
    )
    def test_partition_exact_and_bounded(self, weights, n_bundles):
        w = np.asarray(weights)
        bundles = token_bucket_partition(w, n_bundles)
        flat = sorted(int(i) for b in bundles for i in b)
        assert flat == list(range(w.size))
        assert 1 <= len(bundles) <= n_bundles

    @settings(deadline=None, max_examples=40)
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1e6), min_size=3, max_size=50
        )
    )
    def test_first_bundle_holds_the_heaviest_flow(self, weights):
        w = np.asarray(weights)
        bundles = token_bucket_partition(w, 2)
        heaviest = int(np.argmax(w))
        assert heaviest in set(int(i) for i in bundles[0])


class TestBillingProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200
        ),
        p_low=st.floats(min_value=5.0, max_value=50.0),
        p_high=st.floats(min_value=51.0, max_value=100.0),
    )
    def test_percentile_monotone_and_bounded(self, samples, p_low, p_high):
        low = percentile_mbps(samples, p_low)
        high = percentile_mbps(samples, p_high)
        assert low <= high
        assert min(samples) <= low
        assert high <= max(samples)
        assert percentile_mbps(samples, 100.0) == max(samples)


def test_reference_sanity():
    """The brute-force LPM reference itself: /0 covers everything."""
    rib = RoutingTable()
    rib.insert(Route(prefix=ipaddress.IPv4Network("0.0.0.0/0"), next_hop="d"))
    assert rib.lookup("203.0.113.7").next_hop == "d"


@pytest.mark.parametrize("length", [0, 8, 16, 24, 32])
def test_mask_arithmetic_each_length(length):
    network = network_of(0xC0A80101, length)
    rib = RoutingTable()
    rib.insert(Route(prefix=network, next_hop=f"len{length}"))
    assert rib.lookup(str(network.network_address)).next_hop == f"len{length}"
