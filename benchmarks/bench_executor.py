"""Executor backend bench: serial vs pool vs socket on a cold sweep.

Times the same cold 12-spec sweep (optimal bundling at 120 flows, so
each work unit carries real DP weight) under all three executor
backends and archives ``benchmarks/output/bench_executor.baseline.json``
— cpu count, per-backend wall time, and speedup over serial.  Committed
baselines are the fan-out trajectory: diffs show when a backend's
dispatch overhead starts eating the parallelism.

Byte-identity across backends is asserted unconditionally.  The >= 2x
speedup assertion for pool and socket only arms on machines with enough
cores (:data:`MIN_CORES_FOR_SPEEDUP`) — on a 1-2 core runner the pool
*is* serial and the bench still archives the honest numbers.
"""

import json
import os
import time

from repro.runtime import cache
from repro.runtime.spec import ExperimentSpec, evaluate_spec, run_specs

from conftest import OUTPUT_DIR

BACKENDS = ("serial", "pool", "socket")
N_SPECS = 12
#: Optimal bundling at 120 aggregates: ~0.15 s of O(n^2 B) DP per spec,
#: heavy enough that dispatch/wire overhead can't hide a real speedup.
SPECS = [
    ExperimentSpec(
        dataset="eu_isp",
        n_flows=120,
        seed=seed,
        strategies=("optimal",),
        bundle_counts=(1, 2, 3, 4, 5, 6),
    )
    for seed in range(N_SPECS)
]
#: Cores below which the parallel backends cannot honestly double
#: throughput (2 cores leaves no headroom for coordinator overhead).
MIN_CORES_FOR_SPEEDUP = 4
TARGET_SPEEDUP = 2.0


def backend_study():
    # Pay the one-time scipy/dataset warm-up before any timer starts;
    # forked workers inherit the warm state, so no backend gets billed
    # for interpreter start-up the others skipped.
    cache.configure(enabled=True, directory="", fresh=True)
    evaluate_spec(ExperimentSpec(dataset="eu_isp", n_flows=24, seed=99))
    rows = []
    reference = None
    for backend in BACKENDS:
        cache.configure(enabled=True, directory="", fresh=True)
        start = time.perf_counter()
        results = run_specs(SPECS, jobs=0, executor=backend, use_cache=False)
        elapsed = time.perf_counter() - start
        payload = json.dumps(results, sort_keys=True)
        if reference is None:
            reference = payload
        assert payload == reference, f"{backend} diverged from serial bytes"
        rows.append({"backend": backend, "seconds": round(elapsed, 4)})
    serial_s = rows[0]["seconds"]
    for row in rows:
        row["speedup"] = round(serial_s / max(row["seconds"], 1e-9), 3)
    return rows


def render(rows):
    header = f"{'backend':>10}{'seconds':>10}{'speedup':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['backend']:>10}{row['seconds']:>10.3f}"
            f"{row['speedup']:>10.2f}"
        )
    lines.append(f"(cpu_count={os.cpu_count()}, specs={N_SPECS})")
    return "\n".join(lines)


def test_executor_backends(run_once, save_output):
    rows = run_once(backend_study)
    save_output("bench_executor", render(rows))
    cores = os.cpu_count() or 1
    asserted = cores >= MIN_CORES_FOR_SPEEDUP
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "bench_executor.baseline.json").write_text(
        json.dumps(
            {
                "cpu_count": cores,
                "n_specs": N_SPECS,
                "spec": {"n_flows": 120, "strategies": ["optimal"]},
                "backends": rows,
                "target_speedup": TARGET_SPEEDUP,
                "speedup_asserted": asserted,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    by_backend = {row["backend"]: row for row in rows}
    assert set(by_backend) == set(BACKENDS)
    if asserted:
        assert by_backend["pool"]["speedup"] >= TARGET_SPEEDUP
        assert by_backend["socket"]["speedup"] >= TARGET_SPEEDUP
