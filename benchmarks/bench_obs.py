"""Tracing overhead bench: instrumentation must be free when off.

Every hot path in the runtime, stream, and serve layers now carries
``repro.obs`` span/event calls.  This bench pins the cost contract those
call sites rely on: with the default no-op tracer the instrumented
figure-14 driver must run at baseline speed, and with tracing *enabled*
(real spans, JSONL export) the slowdown must stay under 5%.

The workload is a scaled-down serial figure 14 (4 alphas x 2 demand
families x 3 networks = 24 markets) with the result cache disabled, so
every timed run performs identical real work.  The three modes are
timed *interleaved* (default-noop, installed-noop, enabled, repeated)
and compared on best-of-round wall times, so machine-load drift lands
on every mode instead of biasing one.  The measured overheads are
archived as ``benchmarks/output/obs_overhead.baseline.json`` — the
checked-in record that tracing stayed cheap.
"""

import dataclasses
import json
import time

from repro import obs
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.sweeps import figure14_data
from repro.obs import read_trace, summarize_trace
from repro.runtime import cache as runtime_cache

from conftest import OUTPUT_DIR

SMALL_CONFIG = dataclasses.replace(DEFAULT_CONFIG, n_flows=40)
ALPHAS = (1.1, 1.5, 3.0, 10.0)
REPEATS = 5
MAX_ENABLED_OVERHEAD = 0.05
MAX_NOOP_OVERHEAD = 0.05  # "~0%": bounded by timing noise, not by work


def workload():
    return figure14_data(alphas=ALPHAS, config=SMALL_CONFIG)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_tracing_overhead(tmp_path):
    trace_path = tmp_path / "obs_overhead.jsonl"
    best = {"default": float("inf"), "noop": float("inf"),
            "enabled": float("inf")}
    runtime_cache.configure(enabled=False, fresh=True)
    try:
        workload()  # warm-up: one-time import/allocation costs
        for _ in range(REPEATS):
            # Mode 1: the shipped default — tracing never configured.
            elapsed, baseline = timed(workload)
            best["default"] = min(best["default"], elapsed)

            # Mode 2: an explicitly installed NoopTracer (what capture()
            # yields in untraced workers) — must cost the same as mode 1.
            previous = obs.set_tracer(obs.NoopTracer())
            try:
                elapsed, noop_result = timed(workload)
            finally:
                obs.set_tracer(previous)
            best["noop"] = min(best["noop"], elapsed)

            # Mode 3: real spans, JSONL export to disk.
            obs.configure_tracing(str(trace_path))
            try:
                elapsed, traced_result = timed(workload)
            finally:
                obs.configure_tracing(None)
            best["enabled"] = min(best["enabled"], elapsed)

            assert noop_result == baseline
            assert traced_result == baseline
    finally:
        runtime_cache.configure(enabled=True)
    default_s, noop_s, enabled_s = (
        best["default"], best["noop"], best["enabled"],
    )

    # The enabled runs really produced a healthy trace.
    summary = summarize_trace(read_trace(trace_path))
    assert summary["orphans"] == 0
    assert summary["stages"]["runtime.evaluate_spec"]["count"] == REPEATS * 24

    noop_overhead = noop_s / default_s - 1.0
    enabled_overhead = enabled_s / default_s - 1.0
    record = {
        "artifact": "obs_overhead",
        "workload": f"figure14 alphas={list(ALPHAS)} n_flows=40 serial no-cache",
        "repeats": REPEATS,
        "default_noop_wall_s": round(default_s, 4),
        "installed_noop_wall_s": round(noop_s, 4),
        "enabled_wall_s": round(enabled_s, 4),
        "noop_overhead_pct": round(100.0 * noop_overhead, 2),
        "enabled_overhead_pct": round(100.0 * enabled_overhead, 2),
        "spans_per_run": summary["spans"] // REPEATS,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "obs_overhead.baseline.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(json.dumps(record, indent=2))

    assert enabled_overhead < MAX_ENABLED_OVERHEAD, record
    assert noop_overhead < MAX_NOOP_OVERHEAD, record
