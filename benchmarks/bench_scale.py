"""Columnar-core scale bench: flows vs wall-clock, 10^3 -> 10^6.

Times the full measure -> model -> design chain on the struct-of-arrays
path at each decade of market size: *cold* includes generating the
columnar dataset (no Flow objects, no disk cache), *warm* re-runs
calibration + profit-weighted tier design on the already-materialized
:class:`~repro.core.flow.FlowTable`.  The committed baseline JSON is the
scaling trajectory: diffs show when any stage stopped being linear-ish in
the flow count, and the assertions pin the headline claim — a million-flow
calibrate+design completes in single-digit seconds.
"""

import json
import time

from repro.core.bundling import ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.market import Market
from repro.runtime import cache
from repro.synth.datasets import generate_flow_table

from conftest import OUTPUT_DIR

SIZES = (1_000, 10_000, 100_000, 1_000_000)
N_TIERS = 4
SEED = 7

#: Single-digit seconds for the 1M-flow cold run (generate + calibrate +
#: design); CI hardware is slower than a dev box, so leave headroom.
COLD_BUDGET_1M_S = 10.0


def _design(flows):
    market = Market(flows, CEDDemand(1.1), LinearDistanceCost(0.2))
    outcome = market.tiered_outcome(ProfitWeightedBundling(), N_TIERS)
    return outcome


def scale_study(sizes=SIZES):
    # Disable memoization so every cold row times real generation work.
    cache.configure(enabled=False)
    try:
        rows = []
        for size in sizes:
            t0 = time.perf_counter()
            flows = generate_flow_table("eu_isp", size=size, seed=SEED)
            t_generate = time.perf_counter() - t0

            t1 = time.perf_counter()
            outcome = _design(flows)
            t_model = time.perf_counter() - t1

            t2 = time.perf_counter()
            warm_outcome = _design(flows)
            t_warm = time.perf_counter() - t2

            assert abs(warm_outcome.profit - outcome.profit) < 1e-6 * max(
                1.0, abs(outcome.profit)
            )
            rows.append(
                {
                    "n_flows": size,
                    "cold_s": round(t_generate + t_model, 4),
                    "generate_s": round(t_generate, 4),
                    "calibrate_design_s": round(t_model, 4),
                    "warm_s": round(t_warm, 4),
                    "n_tiers": len(outcome.tiers),
                    "profit_capture": round(outcome.profit_capture, 4),
                }
            )
        return rows
    finally:
        cache.configure(enabled=True)


def render(rows):
    header = (
        f"{'flows':>10}{'cold s':>10}{'gen s':>10}{'model s':>10}"
        f"{'warm s':>10}{'tiers':>7}{'capture':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['n_flows']:>10,}{row['cold_s']:>10.3f}"
            f"{row['generate_s']:>10.3f}{row['calibrate_design_s']:>10.3f}"
            f"{row['warm_s']:>10.3f}{row['n_tiers']:>7}"
            f"{row['profit_capture']:>9.3f}"
        )
    return "\n".join(lines)


def test_scale_smoke(run_once, save_output):
    """CI time-budget smoke: a 10^5-flow cold run must stay sub-second-ish."""
    rows = run_once(scale_study, sizes=(100_000,))
    save_output("scale_smoke", render(rows))
    assert rows[0]["cold_s"] < COLD_BUDGET_1M_S / 2
    assert rows[0]["n_tiers"] >= 2


def test_scale_throughput(run_once, save_output):
    rows = run_once(scale_study)
    save_output("scale_throughput", render(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "bench_scale.baseline.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n"
    )
    by_size = {row["n_flows"]: row for row in rows}
    million = by_size[1_000_000]
    # The headline: a 1M-flow measure -> model -> design run in single-digit
    # seconds, and the design itself (calibrate + bundle + price) faster
    # still once the table is in memory.
    assert million["cold_s"] < COLD_BUDGET_1M_S
    assert million["warm_s"] < COLD_BUDGET_1M_S / 2
    # Every size must produce a real multi-tier design.
    assert all(row["n_tiers"] >= 2 for row in rows)
