"""Figure 4 — profit vs price for two flows of different cost (§3.2.1).

Identical demand (v = 1, alpha = 2) but c1 = $1 vs c2 = $2: the optima sit
at p* = 2c, so the cheap flow peaks at ($2, $0.25 profit) and the costly
one at ($4, $0.125) — ISPs must price costly traffic higher to maximize
profit."""

from repro.experiments import figure4_data
from repro.experiments.render import render_figure4 as render


def test_figure4(run_once, save_output):
    data = run_once(figure4_data)
    save_output("fig04", render(data))
    assert abs(data["maxima"]["c=1.0"]["price"] - 2.0) < 1e-12
    assert abs(data["maxima"]["c=1.0"]["profit"] - 0.25) < 1e-12
    assert abs(data["maxima"]["c=2.0"]["price"] - 4.0) < 1e-12
    assert abs(data["maxima"]["c=2.0"]["profit"] - 0.125) < 1e-12
    # The sampled curves peak at (or next to) the analytic optimum.
    for name, peak in data["maxima"].items():
        curve = data["curves"][name]
        best_price, best_profit = max(curve, key=lambda pair: pair[1])
        assert best_profit <= peak["profit"] + 1e-12
        assert abs(best_price - peak["price"]) < 0.1
