"""Figure 6 — concave distance-to-cost fits on price-list data (§3.3).

The paper fits y = a*log_b(x) + c to ITU and NTT leased-line price lists
(normalized axes).  Those lists are proprietary/offline, so the bench
generates points from the paper's reported curves plus noise and checks
the fitter recovers the generating slope k = a/ln(b) and intercept c.
(Only k and c are identifiable: a and b enter the model solely through
their ratio.)"""

from repro.experiments import figure6_data
from repro.experiments.render import render_figure6 as render


def test_figure6(run_once, save_output):
    data = run_once(figure6_data)
    save_output("fig06", render(data))
    for fit in data.values():
        assert abs(fit["k_fit"] - fit["k_true"]) < 0.02
        assert abs(fit["c_fit"] - fit["c_true"]) < 0.02
        assert fit["residual"] < 0.05
