"""Figure 10 — EU ISP profit increase, linear cost model (§4.3.1).

Normalized profit gain vs #bundles for base-cost fractions theta in
{0.1, 0.2, 0.3}.  Asserted paper findings: most of each curve's profit is
reached by 2-3 bundles, and a larger base cost (lower cost CV) lowers the
maximum attainable profit."""

from repro.experiments import figure10_data
from repro.experiments.render import render_theta_sweep as render


def assert_theta_claims(data: dict, knee_fraction: float = 0.8) -> None:
    """Claims shared by Figures 10 and 11."""
    for family, panel in data["panels"].items():
        thetas = sorted(panel["normalized_gain"])
        curves = panel["normalized_gain"]
        # Larger base cost -> lower attainable (normalized) profit.
        for lo, hi in zip(thetas, thetas[1:]):
            assert max(curves[hi]) < max(curves[lo]), (family, lo, hi)
        # 3 bundles reach most of each curve's own ceiling.
        counts = panel["bundle_counts"]
        at3 = counts.index(3)
        for theta in thetas:
            curve = curves[theta]
            assert curve[at3] >= knee_fraction * max(curve), (family, theta)


def test_figure10(run_once, save_output):
    data = run_once(figure10_data)
    save_output("fig10", render(data, "Figure 10"))
    assert_theta_claims(data)
