"""Serving-path bench: quote throughput baseline and batching payoff.

Warms a :class:`~repro.serve.registry.SnapshotRegistry` the honest way —
replaying a seeded trace through the streaming repricer so accepted
re-tierings hot-swap snapshots in — then drives the quote server with the
same seeded load generator the CLI self-test uses.  The committed JSON is
the serving throughput trajectory: diffs show when the quote path got
slower, started degrading, or lost its latency tail.

A second bench pins down *why* the engine is batch-shaped: pricing the
same requests through the vectorized batch path must beat the per-flow
Python loop by an order of magnitude.
"""

import json
import time

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.serve import (
    QuoteEngine,
    QuoteServer,
    ServeConfig,
    SnapshotRegistry,
    generate_requests,
    run_load,
)
from repro.stream import StreamConfig, StreamingPipeline, TraceReplaySource
from repro.synth.trace import generate_network_trace

from conftest import OUTPUT_DIR

P0 = 20.0


def warm_registry(n_flows=80, seed=17, duration_s=7200.0):
    """Stream a trace into a registry; return (registry, engine)."""
    trace = generate_network_trace(
        "eu_isp", n_flows=n_flows, seed=seed, duration_seconds=duration_s
    )
    source = TraceReplaySource(trace, export_interval_ms=60_000)
    cost_model = LinearDistanceCost(0.2)
    registry = SnapshotRegistry()
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=CEDDemand(1.1),
        cost_model=cost_model,
        config=StreamConfig(window_ms=600_000, blended_rate=P0),
    )
    pipeline.repricer.on_design_published = registry.subscriber(
        pipeline.config_digest
    )
    pipeline.run()
    return registry, QuoteEngine(registry, cost_model, fallback_blended_rate=P0)


def serve_study(n_requests=5000):
    registry, engine = warm_registry()
    snapshot = registry.current()
    requests = generate_requests(
        n_requests, seed=23, snapshot=snapshot, unknown_fraction=0.2
    )
    with QuoteServer(
        engine, ServeConfig(workers=2, queue_depth=512, timeout_ms=5000.0)
    ) as server:
        report = run_load(server, requests)
        stats = server.stats()
    return report, stats, registry


def test_serve_throughput(run_once, save_output):
    report, stats, registry = run_once(serve_study)
    save_output("serve_throughput", report.render())
    baseline = {
        "n_requests": report.n_requests,
        "answered": report.answered,
        "priced": report.priced,
        "degraded": report.degraded,
        "timed_out": report.timed_out,
        "shed": report.shed,
        "snapshot_swaps": registry.swaps,
        "quotes_per_second": round(report.quotes_per_second, -2),
        "request_p99_ms": round(report.latency_ms.get("p99", 0.0), 1),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serve_throughput.baseline.json").write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    # The stream must have published something to serve from, and the
    # whole load must come back priced: no degradation, no timeouts, no
    # shedding at this queue depth.
    assert registry.swaps >= 1
    assert report.answered == report.n_requests
    assert report.degraded == 0 and report.timed_out == 0 and report.shed == 0
    assert stats["served"] == report.n_requests
    assert report.quotes_per_second > 1000


def batching_payoff(n_requests=2000):
    """Seconds for (vectorized batch, per-flow Python loop) on one load."""
    registry, engine = warm_registry()
    requests = generate_requests(
        n_requests, seed=29, snapshot=registry.current(), unknown_fraction=0.2
    )
    start = time.perf_counter()
    batched = engine.quote_batch(requests)
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    looped = [engine.quote(request) for request in requests]
    loop_s = time.perf_counter() - start
    assert [q.unit_price for q in batched] == [q.unit_price for q in looped]
    return batch_s, loop_s


def test_batched_quoting_beats_per_flow_loop(run_once, save_output):
    batch_s, loop_s = run_once(batching_payoff)
    speedup = loop_s / max(batch_s, 1e-9)
    save_output(
        "serve_batching",
        f"batched: {batch_s * 1000:.2f} ms, per-flow loop: "
        f"{loop_s * 1000:.2f} ms ({speedup:.1f}x speedup)",
    )
    # The acceptance bar: vectorized batch quoting is at least an order
    # of magnitude faster than quoting the same requests one at a time.
    assert speedup >= 10
