"""Serving-path bench: quote throughput baseline and batching payoff.

Warms a :class:`~repro.serve.registry.SnapshotRegistry` the honest way —
replaying a seeded trace through the streaming repricer so accepted
re-tierings hot-swap snapshots in — then drives the quote server with the
same seeded load generator the CLI self-test uses.  The committed JSON is
the serving throughput trajectory: diffs show when the quote path got
slower, started degrading, or lost its latency tail.

A second bench pins down *why* the engine is batch-shaped: pricing the
same requests through the vectorized batch path must beat the per-flow
Python loop by an order of magnitude.
"""

import json
import os
import time

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.fleet import FleetConfig, ShardFleet
from repro.serve import (
    QuoteEngine,
    QuoteServer,
    ServeConfig,
    SnapshotRegistry,
    generate_requests,
    run_load,
)
from repro.stream import StreamConfig, StreamingPipeline, TraceReplaySource
from repro.synth.trace import generate_network_trace

from conftest import OUTPUT_DIR

P0 = 20.0


def warm_registry(n_flows=80, seed=17, duration_s=7200.0):
    """Stream a trace into a registry; return (registry, engine)."""
    trace = generate_network_trace(
        "eu_isp", n_flows=n_flows, seed=seed, duration_seconds=duration_s
    )
    source = TraceReplaySource(trace, export_interval_ms=60_000)
    cost_model = LinearDistanceCost(0.2)
    registry = SnapshotRegistry()
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=CEDDemand(1.1),
        cost_model=cost_model,
        config=StreamConfig(window_ms=600_000, blended_rate=P0),
    )
    pipeline.repricer.on_design_published = registry.subscriber(
        pipeline.config_digest
    )
    pipeline.run()
    return registry, QuoteEngine(registry, cost_model, fallback_blended_rate=P0)


def serve_study(n_requests=5000):
    registry, engine = warm_registry()
    snapshot = registry.current()
    requests = generate_requests(
        n_requests, seed=23, snapshot=snapshot, unknown_fraction=0.2
    )
    with QuoteServer(
        engine, ServeConfig(workers=2, queue_depth=512, timeout_ms=5000.0)
    ) as server:
        report = run_load(server, requests)
        stats = server.stats()
    return report, stats, registry


def test_serve_throughput(run_once, save_output):
    report, stats, registry = run_once(serve_study)
    save_output("serve_throughput", report.render())
    baseline = {
        "n_requests": report.n_requests,
        "answered": report.answered,
        "priced": report.priced,
        "degraded": report.degraded,
        "timed_out": report.timed_out,
        "shed": report.shed,
        "snapshot_swaps": registry.swaps,
        "quotes_per_second": round(report.quotes_per_second, -2),
        "request_p99_ms": round(report.latency_ms.get("p99", 0.0), 1),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serve_throughput.baseline.json").write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    # The stream must have published something to serve from, and the
    # whole load must come back priced: no degradation, no timeouts, no
    # shedding at this queue depth.
    assert registry.swaps >= 1
    assert report.answered == report.n_requests
    assert report.degraded == 0 and report.timed_out == 0 and report.shed == 0
    assert stats["served"] == report.n_requests
    assert report.quotes_per_second > 1000


def _quantile_ms(latencies, q):
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def fleet_study(n_requests=8000, burst=800):
    """Single-process server baseline vs the sharded fleet, same load.

    The fleet is driven through the coordinator's ``quote_batch`` (the
    front door's unit of work) in sustained bursts, with a live snapshot
    cutover landing mid-load at every shard count — the bench asserts the
    cutover leaked zero stale-version quotes.
    """
    registry, engine = warm_registry()
    snapshot = registry.current()
    requests = generate_requests(
        n_requests, seed=31, snapshot=snapshot, unknown_fraction=0.2
    )
    with QuoteServer(
        engine, ServeConfig(workers=2, queue_depth=4096, timeout_ms=10_000.0)
    ) as server:
        base = run_load(server, requests, burst=512)
    bursts = [
        requests[at : at + burst] for at in range(0, len(requests), burst)
    ]
    cutover_at = len(bursts) // 2
    by_shards = {}
    for n_shards in sorted({1, 2, os.cpu_count() or 1}):
        fleet = ShardFleet(
            engine.cost_model,
            FleetConfig(shards=n_shards, timeout_ms=30_000.0),
            fallback_blended_rate=P0,
        )
        with fleet:
            fleet.publish(snapshot)
            fleet.quote_batch(bursts[0])  # warm the pipes before timing
            latencies = []
            answered = degraded = stale = 0
            start = time.perf_counter()
            for i, chunk in enumerate(bursts):
                if i == cutover_at:
                    fleet.publish(snapshot)  # live mid-load cutover
                sent = time.perf_counter()
                quotes = fleet.quote_batch(chunk)
                latencies.append(
                    (time.perf_counter() - sent) * 1000.0 / len(chunk)
                )
                answered += len(quotes)
                degraded += sum(q.degraded for q in quotes)
                if i >= cutover_at:
                    stale += sum(
                        q.snapshot_version != fleet.version for q in quotes
                    )
            wall = time.perf_counter() - start
        by_shards[n_shards] = {
            "answered": answered,
            "degraded": degraded,
            "stale_after_cutover": stale,
            "quotes_per_second": answered / wall,
            "p99_ms": _quantile_ms(latencies, 0.99),
        }
    return base, by_shards


def test_fleet_beats_single_process_server(run_once, save_output):
    base, by_shards = run_once(fleet_study)
    best_shards = max(
        by_shards, key=lambda n: by_shards[n]["quotes_per_second"]
    )
    best = by_shards[best_shards]
    lines = [
        f"single-process QuoteServer: {base.quotes_per_second:,.0f} quotes/s "
        f"(p99 {base.latency_ms.get('p99', 0.0):.2f} ms)"
    ]
    for n_shards, row in sorted(by_shards.items()):
        lines.append(
            f"fleet x{n_shards}: {row['quotes_per_second']:,.0f} quotes/s "
            f"(p99 {row['p99_ms']:.3f} ms/quote, "
            f"{row['degraded']} degraded, "
            f"{row['stale_after_cutover']} stale after cutover)"
        )
    lines.append(
        f"best: x{best_shards} at "
        f"{best['quotes_per_second'] / base.quotes_per_second:.1f}x the "
        "single-process baseline"
    )
    save_output("fleet_throughput", "\n".join(lines))
    baseline = {
        "cpu_count": os.cpu_count(),
        "single_process": {
            "quotes_per_second": round(base.quotes_per_second, -2),
            "p99_ms": round(base.latency_ms.get("p99", 0.0), 1),
        },
        "fleet": {
            str(n): {
                "quotes_per_second": round(row["quotes_per_second"], -3),
                "p99_ms": round(row["p99_ms"], 3),
                "stale_after_cutover": row["stale_after_cutover"],
                "degraded": row["degraded"],
            }
            for n, row in sorted(by_shards.items())
        },
        "best_speedup_vs_single": round(
            best["quotes_per_second"] / base.quotes_per_second, 1
        ),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "fleet_throughput.baseline.json").write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    for row in by_shards.values():
        # Sustained load across a live cutover: every answer priced, and
        # not one of them from the superseded design.
        assert row["degraded"] == 0
        assert row["stale_after_cutover"] == 0
    # Sharding must pay: more shards beat the single-process server, and
    # the best fleet clears it by at least 2x.
    assert (
        by_shards[max(by_shards)]["quotes_per_second"]
        > base.quotes_per_second
    )
    assert best["quotes_per_second"] >= 2.0 * base.quotes_per_second


def batching_payoff(n_requests=2000):
    """Seconds for (vectorized batch, per-flow Python loop) on one load."""
    registry, engine = warm_registry()
    requests = generate_requests(
        n_requests, seed=29, snapshot=registry.current(), unknown_fraction=0.2
    )
    start = time.perf_counter()
    batched = engine.quote_batch(requests)
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    looped = [engine.quote(request) for request in requests]
    loop_s = time.perf_counter() - start
    assert [q.unit_price for q in batched] == [q.unit_price for q in looped]
    return batch_s, loop_s


def test_batched_quoting_beats_per_flow_loop(run_once, save_output):
    batch_s, loop_s = run_once(batching_payoff)
    speedup = loop_s / max(batch_s, 1e-9)
    save_output(
        "serve_batching",
        f"batched: {batch_s * 1000:.2f} ms, per-flow loop: "
        f"{loop_s * 1000:.2f} ms ({speedup:.1f}x speedup)",
    )
    # The acceptance bar: vectorized batch quoting is at least an order
    # of magnitude faster than quoting the same requests one at a time.
    assert speedup >= 10
