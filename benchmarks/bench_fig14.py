"""Figure 14 — worst-case capture over price sensitivity (§4.3.2).

For each network and bundle count, the *minimum* profit capture of the
profit-weighted strategy over alpha in [1.1, 10] (both demand models).
Asserted paper finding: results are robust — e.g. two bundles on the EU
ISP capture a large fraction of profit regardless of alpha."""

from repro.experiments import figure14_data
from repro.experiments.render import render_envelope as render


def assert_envelope_claims(data: dict, floor_at_2: float, floor_at_4: float) -> None:
    at2 = data["bundle_counts"].index(2)
    at4 = data["bundle_counts"].index(4)
    for family, panel in data["panels"].items():
        for network, curve in panel.items():
            assert curve[at2] >= floor_at_2, (family, network, curve)
            assert curve[at4] >= floor_at_4, (family, network, curve)


def test_figure14(run_once, save_output):
    data = run_once(figure14_data)
    save_output(
        "fig14", render(data, "Figure 14", f"alpha in {data['alphas']}")
    )
    assert_envelope_claims(data, floor_at_2=0.4, floor_at_4=0.6)
    # EU ISP under CED: around 0.5+ capture with two bundles across the
    # whole alpha range (the paper quotes ~0.8 for its proprietary data).
    assert data["panels"]["ced"]["eu_isp"][data["bundle_counts"].index(2)] >= 0.5
