"""Figure 14 — worst-case capture over price sensitivity (§4.3.2).

For each network and bundle count, the *minimum* profit capture of the
profit-weighted strategy over alpha in [1.1, 10] (both demand models).
Asserted paper finding: results are robust — e.g. two bundles on the EU
ISP capture a large fraction of profit regardless of alpha.

This is the heaviest sweep in the repo (7 alphas x 2 families x 3
networks = 42 markets), so it doubles as the runtime's perf baseline:
``test_runtime_baseline`` times a cold-cache serial run against a
warm-cache rerun and archives the comparison as
``benchmarks/output/fig14_runtime_baseline.json`` — the checked-in
record that caching actually removes the recompute cost.
"""

import json
import time

from repro.experiments import figure14_data
from repro.experiments.render import render_envelope as render
from repro.runtime import cache as runtime_cache
from repro.runtime.metrics import METRICS


def assert_envelope_claims(data: dict, floor_at_2: float, floor_at_4: float) -> None:
    at2 = data["bundle_counts"].index(2)
    at4 = data["bundle_counts"].index(4)
    for family, panel in data["panels"].items():
        for network, curve in panel.items():
            assert curve[at2] >= floor_at_2, (family, network, curve)
            assert curve[at4] >= floor_at_4, (family, network, curve)


def test_figure14(run_once, save_output):
    data = run_once(figure14_data)
    save_output(
        "fig14", render(data, "Figure 14", f"alpha in {data['alphas']}")
    )
    assert_envelope_claims(data, floor_at_2=0.4, floor_at_4=0.6)
    # EU ISP under CED: around 0.5+ capture with two bundles across the
    # whole alpha range (the paper quotes ~0.8 for its proprietary data).
    assert data["panels"]["ced"]["eu_isp"][data["bundle_counts"].index(2)] >= 0.5


def test_runtime_baseline():
    """Cold vs warm wall time for the heaviest sweep, archived as JSON."""
    runtime_cache.configure(fresh=True)  # a real cold start
    METRICS.reset()
    start = time.perf_counter()
    cold = figure14_data()
    cold_s = time.perf_counter() - start
    cold_counters = METRICS.snapshot()["counters"]

    METRICS.reset()
    start = time.perf_counter()
    warm = figure14_data()
    warm_s = time.perf_counter() - start
    warm_counters = METRICS.snapshot()["counters"]

    # Identical output, no markets rebuilt, one result hit per work unit.
    assert warm == cold
    assert warm_counters.get("markets_built", 0) == 0
    assert warm_counters.get("cache_hits:result", 0) == cold_counters.get(
        "cache_misses:result", 0
    )

    record = {
        "artifact": "fig14",
        "work_units": cold_counters.get("cache_misses:result", 0),
        "serial_cold_wall_s": cold_s,
        "warm_cache_wall_s": warm_s,
        "warm_speedup": cold_s / max(warm_s, 1e-9),
        "cold_counters": cold_counters,
        "warm_counters": warm_counters,
    }
    import pathlib

    output_dir = pathlib.Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    path = output_dir / "fig14_runtime_baseline.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps({k: record[k] for k in (
        "work_units", "serial_cold_wall_s", "warm_cache_wall_s", "warm_speedup"
    )}, indent=2))
    assert record["warm_speedup"] > 5.0, record
