"""Figure 1 — market efficiency loss due to coarse bundling (§2.2.1).

Paper values: blended rate P0 = $1.2/Mbps earns $2.08 profit and $4.17
consumer surplus; splitting the two flows into tiers priced ($2, $1)
earns $2.25 and $4.50 — both ISP and customers gain."""

from repro.experiments import figure1_data
from repro.experiments.render import render_figure1 as render


def test_figure1(run_once, save_output):
    data = run_once(figure1_data)
    save_output("fig01", render(data))
    assert abs(data["blended"]["price"] - 1.2) < 1e-9
    assert abs(data["blended"]["profit"] - 25.0 / 12.0) < 1e-9
    assert abs(data["blended"]["surplus"] - 25.0 / 6.0) < 1e-9
    assert abs(data["tiered"]["profit"] - 2.25) < 1e-9
    assert abs(data["tiered"]["surplus"] - 4.5) < 1e-9
