"""Figure 13 — EU ISP profit increase, destination-type cost model (§4.3.1).

On-net traffic (fraction theta of each flow) costs half of off-net
traffic; bundling uses the class-aware profit-weighted heuristic that
never mixes the two classes.  Asserted paper finding: with two distinct
cost classes, two bundles already attain (essentially all of) the
achievable profit, under both demand models."""

from repro.experiments import figure13_data

from bench_fig10 import render


def test_figure13(run_once, save_output):
    data = run_once(figure13_data)
    save_output("fig13", render(data, "Figure 13"))
    for family, panel in data["panels"].items():
        counts = panel["bundle_counts"]
        at2 = counts.index(2)
        for theta, curve in panel["normalized_gain"].items():
            assert curve[at2] >= 0.99 * max(curve), (family, theta)
        # CED responds more strongly to the theta-induced CV change than
        # logit does (the paper's closing observation for this model).
    ced = data["panels"]["ced"]["normalized_gain"]
    logit = data["panels"]["logit"]["normalized_gain"]
    ced_spread = max(ced[0.15]) - max(ced[0.05])
    logit_spread = max(logit[0.15]) - max(logit[0.05])
    assert ced_spread > logit_spread
