"""Ecosystem scale bench: ASes vs generate+route wall-clock, up to 10^3.

Times world generation (Base + Relationships) and all-pairs valley-free
routing separately at each world size.  Routing is the quadratic part —
three dense N x N sweeps — so the committed baseline JSON is the scaling
trajectory for the vectorized row-update implementation; diffs show if a
change makes the sweeps super-quadratic or the generator stops being
negligible.  Traffic is *derived* (per-AS tables materialize on demand),
so one representative flow-table draw is timed per size rather than all N.
"""

import json
import time

from repro.ecosystem import EcosystemSpec, render_ecosystem, verify_valley_free
from repro.runtime import cache

from conftest import OUTPUT_DIR

SIZES = (50, 200, 1_000)
SEED = 0

#: The acceptance envelope for the 10^3-AS world (generate + route); CI
#: hardware is slower than a dev box, so leave generous headroom.
BUDGET_1K_S = 60.0


def ecosystem_scale(sizes=SIZES):
    # Disable memoization so every row times real generation work.
    cache.configure(enabled=False)
    try:
        rows = []
        for size in sizes:
            spec = EcosystemSpec.from_counts(ases=size, ixps=3, seed=SEED)
            t0 = time.perf_counter()
            eco = render_ecosystem(spec)
            t_total = time.perf_counter() - t0

            t1 = time.perf_counter()
            table = eco.flow_table_for(eco.ases[0].asn)
            t_flow_table = time.perf_counter() - t1

            assert verify_valley_free(eco, max_pairs=500) > 0
            routing = eco.tables.summary()
            rows.append(
                {
                    "n_ases": size,
                    "generate_route_s": round(t_total, 4),
                    "flow_table_s": round(t_flow_table, 4),
                    "up_edges": int(eco.up_edges.shape[0]),
                    "peer_edges": int(eco.peer_edges.shape[0]),
                    "reachable_fraction": routing["reachable_fraction"],
                    "mean_path_len": routing["mean_path_len"],
                    "n_flows": len(table),
                }
            )
        return rows
    finally:
        cache.configure(enabled=True)


def render(rows):
    header = (
        f"{'ASes':>8}{'gen+route s':>13}{'flow tbl s':>12}{'up':>7}"
        f"{'peer':>7}{'reach':>8}{'path':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['n_ases']:>8,}{row['generate_route_s']:>13.3f}"
            f"{row['flow_table_s']:>12.4f}{row['up_edges']:>7}"
            f"{row['peer_edges']:>7}{row['reachable_fraction']:>8.3f}"
            f"{row['mean_path_len']:>7.2f}"
        )
    return "\n".join(lines)


def test_ecosystem_smoke(run_once, save_output):
    """CI time-budget smoke: a 200-AS world builds well inside a second."""
    rows = run_once(ecosystem_scale, sizes=(200,))
    save_output("ecosystem_smoke", render(rows))
    assert rows[0]["generate_route_s"] < BUDGET_1K_S / 10
    assert rows[0]["reachable_fraction"] == 1.0


def test_ecosystem_scale(run_once, save_output):
    rows = run_once(ecosystem_scale)
    save_output("ecosystem_scale", render(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "ecosystem_scale.baseline.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n"
    )
    by_size = {row["n_ases"]: row for row in rows}
    thousand = by_size[1_000]
    assert thousand["generate_route_s"] < BUDGET_1K_S
    # The tier-1 clique guarantees a fully routed world at every size.
    assert all(row["reachable_fraction"] == 1.0 for row in rows)
    # Per-AS tables stay cheap no matter the world size (derived, not
    # stored): one draw is a few numpy allocations.
    assert all(row["flow_table_s"] < 1.0 for row in rows)
