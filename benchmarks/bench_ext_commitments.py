"""Extension bench: commit-level volume discounts (§2 taxonomy).

Destination tiers (the paper's focus) discriminate by *where* traffic
goes; commit menus discriminate by *how much* a customer buys.  This
bench builds a heterogeneous customer population, optimizes a 3-level
commit menu, and compares it with the best single blended rate.
Asserted: the menu never loses to the blended rate, customers self-select
monotonically, and volume is discounted."""

import numpy as np

from repro.core.commitments import CommitMarket


def commitment_study(n_customers=80, seed=3):
    rng = np.random.default_rng(seed)
    market = CommitMarket(alpha=2.0, unit_cost=1.0)
    valuations = rng.lognormal(mean=1.5, sigma=0.9, size=n_customers)

    blended = market.best_single_price(valuations)
    blended_profit = market.profit(valuations, [blended])

    usages = (valuations / blended.price_per_mbps) ** 2
    commits = [
        0.0,
        float(np.quantile(usages, 0.6)),
        float(np.quantile(usages, 0.9)),
    ]
    menu = market.optimize_menu_prices(valuations, commits)
    menu_profit = market.profit(valuations, menu)
    choices = market.simulate(valuations, menu)
    order = np.argsort(valuations)
    picks = [
        -1 if choices[i].contract_index is None else choices[i].contract_index
        for i in order
    ]
    return {
        "blended": blended,
        "blended_profit": blended_profit,
        "menu": menu,
        "menu_profit": menu_profit,
        "picks_by_valuation": picks,
        "surpluses": [c.surplus for c in choices],
    }


def render(data):
    lines = [
        "Extension: commit-level volume discounts vs blended rate",
        f"  blended: ${data['blended'].price_per_mbps:.2f}/Mbps "
        f"-> profit ${data['blended_profit']:.1f}",
        "  optimized menu:",
    ]
    for contract in data["menu"]:
        lines.append(
            f"    commit {contract.commit_mbps:8.1f} Mbps at "
            f"${contract.price_per_mbps:.3f}/Mbps"
        )
    lines.append(f"  menu profit ${data['menu_profit']:.1f} "
                 f"({data['menu_profit'] / data['blended_profit'] - 1:+.1%})")
    return "\n".join(lines)


def test_commit_menu(run_once, save_output):
    data = run_once(commitment_study)
    save_output("ext_commitments", render(data))
    # Never worse than the blended baseline.
    assert data["menu_profit"] >= data["blended_profit"] - 1e-9
    # Self-selection is monotone in valuation.
    picks = data["picks_by_valuation"]
    assert picks == sorted(picks)
    # Nobody is served at negative surplus (they could opt out).
    assert min(data["surpluses"]) >= -1e-12
    # If several contracts are active, bigger commits are cheaper per Mbps.
    menu = data["menu"]
    active = sorted(set(p for p in picks if p >= 0))
    for a, b in zip(active, active[1:]):
        assert menu[b].price_per_mbps <= menu[a].price_per_mbps + 1e-6
