"""Figure 3 — feasible CED demand functions (§3.2.1).

Demand curves Q = (v/p)^alpha for v = 1 at the paper's two illustrative
sensitivities: alpha = 3.3 (elastic, e.g. residential ISPs with cheap
substitutes) and alpha = 1.4 (inelastic).  Varying alpha spans the whole
feasible demand space."""

from repro.experiments import figure3_data
from repro.experiments.render import render_figure3 as render


def test_figure3(run_once, save_output):
    data = run_once(figure3_data)
    save_output("fig03", render(data))
    for name, curve in data["curves"].items():
        quantities = [q for _, q in curve]
        # Downward sloping everywhere.
        assert all(a > b for a, b in zip(quantities, quantities[1:]))
    # Higher alpha is more elastic: steeper decline below p=1, lower tail.
    q_14 = dict(data["curves"]["alpha=1.4"])
    q_33 = dict(data["curves"]["alpha=3.3"])
    prices = [p for p, _ in data["curves"]["alpha=1.4"]]
    above_one = [p for p in prices if p > 1.05]
    assert all(q_33[p] < q_14[p] for p in above_one)
