"""Figure 5 — logit demand function (§3.2.2).

Two flows with valuations (1.6, 1.0); flow 1's price is fixed at $1 and
flow 2's price sweeps 0..4.  Lower alpha is less elastic — users need
bigger price changes to move."""

from repro.experiments import figure5_data
from repro.experiments.render import render_figure5 as render


def test_figure5(run_once, save_output):
    data = run_once(figure5_data)
    save_output("fig05", render(data))
    for curve in data["curves"].values():
        quantities = [q for _, q in curve]
        assert all(a > b for a, b in zip(quantities, quantities[1:]))
        assert all(0.0 < q < 1.0 for q in quantities)
    # Higher alpha reacts more strongly: by p2 = 3.5 its share is lower.
    q1 = dict(data["curves"]["alpha=1.0"])
    q2 = dict(data["curves"]["alpha=2.0"])
    last_price = data["prices"][-1]
    assert q2[last_price] < q1[last_price]
