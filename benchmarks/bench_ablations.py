"""Ablation benches on the reproduction's design choices (DESIGN.md §3).

Not paper figures — these probe the mechanisms behind them: the optimal
search approximation, the heuristic-vs-data-shape question the paper left
open, measurement granularity, and the billing convention."""

import pytest

from repro.experiments.ablations import (
    billing_ablation,
    granularity_ablation,
    optimal_search_ablation,
    weighting_ablation,
)


def test_optimal_dp_matches_exhaustive(run_once, save_output):
    data = run_once(optimal_search_ablation, n_flows=9, n_trials=6)
    text = (
        "Ablation: optimal bundling search (exhaustive vs contiguous DP)\n"
        f"  {data['n_trials']} trials x {data['n_flows']} flows, "
        f"{data['n_bundles']} bundles\n"
        f"  worst relative profit gap: {data['worst_relative_gap']:.2e}\n"
        f"  exhaustive {data['time_exhaustive_s']:.2f}s vs "
        f"DP {data['time_dp_s']:.3f}s  (speedup {data['speedup']:.0f}x)"
    )
    save_output("ablation_optimal", text)
    assert data["worst_relative_gap"] < 1e-9
    assert data["speedup"] > 5


def test_weighting_vs_correlation(run_once, save_output):
    data = run_once(weighting_ablation)
    lines = [
        "Ablation: bundling heuristics vs demand/distance correlation "
        f"(capture at {data['n_bundles']} bundles)",
        "strategy".ljust(18)
        + "".join(f"rho={rho:<7}" for rho in data["rhos"]),
    ]
    for name, curve in data["capture"].items():
        lines.append(
            name.ljust(18) + "".join(f"{c:<11.3f}" for c in curve)
        )
    save_output("ablation_weighting", "\n".join(lines))
    capture = data["capture"]
    # Optimal dominates everywhere.
    for name in ("profit-weighted", "cost-weighted", "demand-weighted"):
        for optimal_value, value in zip(capture["optimal"], capture[name]):
            assert value <= optimal_value + 1e-9
    # The paper's open question, answered: demand-weighted only becomes
    # competitive when demand and cost rank together (strongly negative
    # correlation); with independent demand it collapses.
    rho_index = {rho: i for i, rho in enumerate(data["rhos"])}
    assert (
        capture["demand-weighted"][rho_index[-0.8]]
        > capture["demand-weighted"][rho_index[0.0]]
    )
    # Profit-weighted is robust across the sweep.
    assert min(capture["profit-weighted"]) > 0.55


def test_granularity(run_once, save_output):
    data = run_once(granularity_ablation)
    lines = [
        "Ablation: profit capture vs destination-aggregate granularity "
        f"({data['n_bundles']} bundles, profit-weighted)",
        "flows    " + "".join(f"{n:>8}" for n in data["flow_counts"]),
        "capture  " + "".join(f"{c:>8.3f}" for c in data["capture"]),
    ]
    save_output("ablation_granularity", "\n".join(lines))
    # The conclusion is insensitive to aggregation level: every
    # granularity supports the "3 tiers capture most profit" finding.
    assert min(data["capture"]) > 0.6
    spread = max(data["capture"]) - min(data["capture"])
    assert spread < 0.35


def test_billing_convention(run_once, save_output):
    data = run_once(billing_ablation)
    text = (
        "Ablation: 95th-percentile vs mean-rate billing "
        f"(diurnal peak/trough {data['peak_to_trough']:.0f}x)\n"
        f"  aggregate mean {data['total_mean_mbps']:.0f} Mbps vs "
        f"p95 {data['total_p95_mbps']:.0f} Mbps "
        f"(premium {data['premium']:.2f}x)\n"
        f"  per-flow premium range "
        f"[{data['per_flow_premium_min']:.2f}, "
        f"{data['per_flow_premium_max']:.2f}]"
    )
    save_output("ablation_billing", text)
    assert data["premium"] > 1.1  # percentile billing charges the peak
    assert data["per_flow_premium_min"] >= 1.0 - 1e-9
    # The rating premium is bounded by the peak/trough of the workload.
    assert data["premium"] < data["peak_to_trough"]


@pytest.mark.parametrize("peak", [1.5, 5.0])
def test_billing_premium_tracks_burstiness(run_once, save_output, peak):
    data = run_once(billing_ablation, peak_to_trough=peak)
    save_output(
        f"ablation_billing_peak{peak}",
        f"peak/trough {peak}: premium {data['premium']:.3f}",
    )
    assert 1.0 < data["premium"] < peak + 0.5


def test_sampling_interval(run_once, save_output):
    from repro.experiments.ablations import sampling_ablation

    data = run_once(sampling_ablation)
    lines = [
        "Ablation: NetFlow sampling interval vs measurement and design quality",
        f"  {'1-in-N':>8} {'flows seen':>11} {'volume err':>11} {'capture':>9}",
    ]
    for row in data["rows"]:
        lines.append(
            f"  {row['interval']:>8} "
            f"{row['flows_measured']:>5}/{row['flows_true']:<5} "
            f"{row['volume_error']:>11.2%} {row['capture']:>9.3f}"
        )
    save_output("ablation_sampling", "\n".join(lines))
    rows = {row["interval"]: row for row in data["rows"]}
    # Unsampled measurement is exact.
    assert rows[1]["volume_error"] < 1e-9
    assert rows[1]["flows_measured"] == rows[1]["flows_true"]
    # Standard 1-in-100 sampling barely moves volumes or design quality.
    assert rows[100]["volume_error"] < 0.05
    assert abs(rows[100]["capture"] - rows[1]["capture"]) < 0.15
    # Even heavy sampling keeps the tiering conclusion (capture stays
    # usable) although small flows start disappearing from the matrix.
    assert rows[5000]["capture"] > 0.5
    assert rows[5000]["flows_measured"] <= rows[1]["flows_measured"]
