"""Figure 2 — direct peering under blended-rate pricing (§2.2.2).

The customer procures a direct link to a nearby IXP iff its amortized
unit cost is below the blended rate R; the bypass is a *market failure*
when that cost still exceeds what a tiered contract could have charged,
(M+1)*c_ISP + A."""

from repro.experiments import figure2_data
from repro.experiments.render import render_figure2 as render


def test_figure2(run_once, save_output):
    data = run_once(figure2_data)
    save_output("fig02", render(data))
    outcomes = [p["outcome"] for p in data["points"]]
    # The three regimes appear in order as c_direct grows.
    assert outcomes[0] == "efficient-bypass"
    assert "market-failure" in outcomes
    assert outcomes[-1] == "stays"
    first_failure = outcomes.index("market-failure")
    first_stay = outcomes.index("stays")
    assert first_failure < first_stay
    assert all(o != "efficient-bypass" for o in outcomes[first_failure:])
