"""Extension bench: the headline result across three demand families.

The paper argues its conclusions are robust to the demand model by
checking CED and logit.  We add a third family (linear demand, the shape
Figure 1 draws) behind the same interface and re-ask the central
question on all three networks.  Asserted: under every family,

* 3-4 optimally-chosen tiers capture most of the blended-to-per-flow gap;
* profit-weighted bundling remains a strong heuristic;
* capture at one bundle is zero (the blended rate is calibrated optimal)."""

from repro.core.bundling import OptimalBundling, ProfitWeightedBundling
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.linear import LinearDemand
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.experiments.runner import render_series_table
from repro.synth.datasets import DATASET_NAMES, load_dataset


def demand_family_study(n_flows=100, seed=7):
    families = {
        "ced": lambda: CEDDemand(alpha=1.1),
        "logit": lambda: LogitDemand(alpha=1.1, s0=0.2),
        "linear": lambda: LinearDemand(kappa=1.5),
    }
    results = {}
    for dataset in DATASET_NAMES:
        flows = load_dataset(dataset, n_flows=n_flows, seed=seed)
        panel = {}
        for family, factory in families.items():
            market = Market(
                flows, factory(), LinearDistanceCost(0.2), blended_rate=20.0
            )
            panel[f"{family}/optimal"] = [
                market.tiered_outcome(OptimalBundling(), b).profit_capture
                for b in (1, 2, 3, 4)
            ]
            panel[f"{family}/profit-w"] = [
                market.tiered_outcome(ProfitWeightedBundling(), b).profit_capture
                for b in (1, 2, 3, 4)
            ]
        results[dataset] = panel
    return results


def render(results):
    blocks = []
    for dataset, panel in results.items():
        blocks.append(
            render_series_table(
                f"Demand-family robustness ({dataset}): profit capture",
                "family/strategy",
                (1, 2, 3, 4),
                panel,
            )
        )
    return "\n\n".join(blocks)


def test_three_demand_families(run_once, save_output):
    results = run_once(demand_family_study)
    save_output("ext_demand_families", render(results))
    for dataset, panel in results.items():
        for label, curve in panel.items():
            assert abs(curve[0]) < 1e-6, (dataset, label)
        for family in ("ced", "logit", "linear"):
            optimal = panel[f"{family}/optimal"]
            heuristic = panel[f"{family}/profit-w"]
            assert optimal[3] > 0.85, (dataset, family, optimal)
            assert optimal[2] > 0.75, (dataset, family, optimal)
            for o, h in zip(optimal, heuristic):
                assert h <= o + 1e-9, (dataset, family)
            assert heuristic[3] > 0.55, (dataset, family, heuristic)
