"""Figure 9 — profit capture per bundling strategy, logit demand (§4.2.2).

Same panels as Figure 8 under logit demand (s0 = 0.2).  The paper's extra
observation — "maximum profit capture occurs more quickly in the logit
model" — is asserted by comparing the optimal curves of the two figures
at two bundles."""

from repro.experiments import figure8_data, figure9_data
from repro.experiments.render import render_figure9 as render

from bench_fig08 import assert_strategy_claims


def test_figure9(run_once, save_output):
    panels = run_once(figure9_data)
    save_output("fig09", render(panels))
    assert_strategy_claims(panels, optimal_floor_at4=0.9)
    # Logit saturates faster than CED: optimal capture at 2 bundles is
    # higher in every panel.
    ced_panels = figure8_data()
    for name, panel in panels.items():
        at2 = panel["bundle_counts"].index(2)
        assert (
            panel["capture"]["optimal"][at2]
            > ced_panels[name]["capture"]["optimal"][at2]
        ), name
