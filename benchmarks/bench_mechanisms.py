"""Mechanism design bench: posted vs spot vs hybrid at 10^5 flows.

Times one ``design_on`` call per mechanism on the same calibrated
100k-flow market and archives
``benchmarks/output/bench_mechanisms.baseline.json`` — per-mechanism
design wall-clock, tier counts, and profit capture.  Committed baselines
are the mechanism layer's perf trajectory: a diff shows when a
mechanism's design pass stops being one vectorized sweep over the
FlowTable columns.

Paid peering is included for completeness but not asserted on: its
negotiation is two masked reductions, far below timer noise.
"""

import json
import time

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.market import Market
from repro.mechanisms import mechanism_by_name
from repro.synth.datasets import load_dataset

from conftest import OUTPUT_DIR

N_FLOWS = 100_000
SEED = 7
MECHS = ("posted-tiers", "spot-auction", "paid-peering", "hybrid")
#: Generous ceiling per design pass: every mechanism is a handful of
#: argsorts and closed-form price evaluations over 10^5 columns, so even
#: a cold CI runner clears this with an order of magnitude to spare.
MAX_SECONDS_PER_DESIGN = 30.0


def mechanism_study():
    flows = load_dataset("eu_isp", n_flows=N_FLOWS, seed=SEED)
    market = Market(
        flows, CEDDemand(alpha=1.1), LinearDistanceCost(theta=0.2), 20.0
    )
    rows = []
    for name in MECHS:
        mechanism = mechanism_by_name(name, n_tiers=3, spot_windows=24)
        start = time.perf_counter()
        design = mechanism.design_on(market)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "mechanism": name,
                "seconds": round(elapsed, 4),
                "n_tiers": design.n_tiers,
                "posted_tiers": design.posted_tiers,
                "profit_capture": round(design.profit_capture, 6),
            }
        )
    return rows


def render(rows):
    header = (
        f"{'mechanism':>14}{'seconds':>10}{'tiers':>7}"
        f"{'posted':>8}{'capture':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['mechanism']:>14}{row['seconds']:>10.3f}"
            f"{row['n_tiers']:>7}{row['posted_tiers']:>8}"
            f"{row['profit_capture']:>10.4f}"
        )
    lines.append(f"(n_flows={N_FLOWS}, seed={SEED})")
    return "\n".join(lines)


def test_mechanism_designs_at_scale(run_once, save_output):
    rows = run_once(mechanism_study)
    save_output("bench_mechanisms", render(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "bench_mechanisms.baseline.json").write_text(
        json.dumps(
            {"n_flows": N_FLOWS, "seed": SEED, "mechanisms": rows},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    by_name = {row["mechanism"]: row for row in rows}
    assert set(by_name) == set(MECHS)
    for name in ("posted-tiers", "spot-auction", "hybrid"):
        assert by_name[name]["seconds"] < MAX_SECONDS_PER_DESIGN
    # Spot's 24 per-window lots discriminate finer than 3 posted tiers.
    assert (
        by_name["spot-auction"]["profit_capture"]
        >= by_name["posted-tiers"]["profit_capture"] - 0.2
    )
