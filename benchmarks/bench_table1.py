"""Table 1 — dataset statistics (paper §4.1.1).

Regenerates the three synthetic datasets and prints their demand-weighted
average distance, distance CV, aggregate traffic, and demand CV next to
the paper's values.  The calibration pins the synthetic samples to the
published statistics, so paper and measured columns must agree."""

from repro.experiments import render_table1, table1_data


def test_table1(run_once, save_output):
    rows = run_once(table1_data)
    save_output("table1", render_table1(rows))
    for row in rows:
        for key, paper_value in row["paper"].items():
            measured = row["measured"][key]
            assert abs(measured - paper_value) / paper_value < 0.02, (
                row["dataset"],
                key,
                measured,
                paper_value,
            )
