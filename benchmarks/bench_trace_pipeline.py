"""Measured-path bench: the headline result on the full §4.1.1 pipeline.

The figure benches use Table 1-calibrated flow sets.  This bench instead
runs the whole measurement chain — endpoint traffic on a PoP topology,
sampled NetFlow export, multi-router dedup, aggregation, per-network
distance heuristics — and asserts that the paper's headline claims
survive on the *measured* (uncalibrated) data:

* optimal bundling reaches high capture with 3-4 tiers on every network;
* profit-weighted tracks optimal far better than demand-weighted;
* tier prices increase with tier cost under CED."""

from repro.core.bundling import (
    DemandWeightedBundling,
    OptimalBundling,
    ProfitWeightedBundling,
)
from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.core.market import Market
from repro.synth.datasets import DATASET_NAMES
from repro.synth.trace import generate_network_trace


def trace_pipeline_study(n_flows=90, seed=17):
    results = {}
    for name in DATASET_NAMES:
        trace = generate_network_trace(name, n_flows=n_flows, seed=seed)
        flows = trace.to_flowset()
        market = Market(
            flows, CEDDemand(1.1), LinearDistanceCost(0.2), blended_rate=20.0
        )
        strategies = {
            "optimal": OptimalBundling(),
            "profit-weighted": ProfitWeightedBundling(),
            "demand-weighted": DemandWeightedBundling(),
        }
        capture = {
            label: [
                market.tiered_outcome(strategy, b).profit_capture
                for b in (2, 3, 4)
            ]
            for label, strategy in strategies.items()
        }
        outcome = market.tiered_outcome(OptimalBundling(), 3)
        results[name] = {
            "n_measured_flows": market.n_flows,
            "records": len(trace.records),
            "capture": capture,
            "tier_prices": [t.price for t in outcome.tiers],
            "tier_costs": [t.mean_cost for t in outcome.tiers],
        }
    return results


def render(results):
    lines = ["Measured-path pipeline: capture at 2/3/4 tiers (CED, linear cost)"]
    for name, data in results.items():
        lines.append(
            f"  {name}: {data['records']} records -> "
            f"{data['n_measured_flows']} flows"
        )
        for label, curve in data["capture"].items():
            values = "".join(f"{c:8.3f}" for c in curve)
            lines.append(f"    {label:<17}{values}")
    return "\n".join(lines)


def test_trace_pipeline(run_once, save_output):
    results = run_once(trace_pipeline_study)
    save_output("trace_pipeline", render(results))
    for name, data in results.items():
        capture = data["capture"]
        # Headline: a few tiers capture most of the gap on measured data.
        assert capture["optimal"][1] > 0.75, (name, capture["optimal"])
        assert capture["optimal"][2] > 0.85, (name, capture["optimal"])
        # Strategy ordering survives measurement noise.
        for i in range(3):
            assert capture["optimal"][i] >= capture["profit-weighted"][i] - 1e-9
        assert capture["profit-weighted"][1] > capture["demand-weighted"][1]
        # CED tier prices are cost-ordered.
        assert data["tier_prices"] == sorted(data["tier_prices"])
        assert data["tier_costs"] == sorted(data["tier_costs"])
