"""Figure 16 — capture over the non-participating market share (§4.3.2).

Best-case profit capture of the profit-weighted strategy over the logit
outside share s0 in (0, 0.9] (logit only; s0 has no CED analogue).  All
swept values respect the calibration feasibility bound alpha*P0*s0 > 1."""

from repro.experiments import figure16_data

from bench_fig14 import render


def test_figure16(run_once, save_output):
    data = run_once(figure16_data)
    save_output(
        "fig16", render(data, "Figure 16", f"s0 in {data['s0_values']}")
    )
    at2 = data["bundle_counts"].index(2)
    panel = data["panels"]["logit"]
    for network, curve in panel.items():
        # Robustness: two bundles already capture most of the gap for the
        # best s0, and more bundles never hurt the envelope much.
        assert curve[at2] >= 0.75, (network, curve)
        assert curve[-1] >= curve[at2] - 1e-9, (network, curve)
