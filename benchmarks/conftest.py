"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table/figure, times it with
pytest-benchmark, prints the series, and archives the rendered text under
``benchmarks/output/`` so paper-vs-measured comparisons (EXPERIMENTS.md)
can cite a concrete artifact.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def save_output():
    """Write a rendered figure/table to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(text)
        return path

    return _save


@pytest.fixture
def run_once(benchmark):
    """Benchmark a driver with a single timed round (drivers are heavy
    and deterministic; statistical repetition adds nothing)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
