"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table/figure, times it with
pytest-benchmark, prints the series, and archives the rendered text under
``benchmarks/output/`` so paper-vs-measured comparisons (EXPERIMENTS.md)
can cite a concrete artifact.

Since the runtime refactor each bench also leaves a structured-JSON perf
record (``<name>.metrics.json``) next to its text artifact: wall time of
the timed driver call plus the run's :data:`repro.runtime.METRICS`
snapshot — markets built, datasets generated, cache hits/misses, workers
used, and per-stage timings.  Committed records are the repo's perf
trajectory: diffs show when a driver got slower or started rebuilding
state it used to cache.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.runtime.metrics import METRICS

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Each bench's metrics JSON covers that bench alone."""
    METRICS.reset()
    yield


@pytest.fixture
def save_output():
    """Write a rendered figure/table (plus the run's metrics JSON) to
    ``benchmarks/output/<name>.txt`` / ``<name>.metrics.json``."""

    def _save(name: str, text: str) -> pathlib.Path:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        metrics_path = OUTPUT_DIR / f"{name}.metrics.json"
        metrics_path.write_text(METRICS.to_json(artifact=name) + "\n")
        print(text)
        return path

    return _save


@pytest.fixture
def run_once(benchmark):
    """Benchmark a driver with a single timed round (drivers are heavy
    and deterministic; statistical repetition adds nothing).  The driver
    call is also timed under the ``bench`` metrics stage so the emitted
    JSON carries its wall time."""

    def _run(fn, *args, **kwargs):
        start = time.perf_counter()
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        METRICS.observe("bench", time.perf_counter() - start)
        return result

    return _run
