"""Extension bench: tiered pricing under explicit price competition.

The paper's model treats rivals implicitly (residual demand) and notes it
does not capture price wars.  This bench plays the §2.2 story as an
actual game: two ISPs with identical costs compete over logit demand;
pricing granularity (blended rate, 3 tiers, per-flow) is a strategic
choice.  Asserted:

* competition compresses equilibrium markups below the monopoly markup;
* unilaterally finer pricing wins share and profit against a blended
  rival;
* the finer-pricing advantage shrinks as both sides adopt it."""

import numpy as np

from repro.core.bundling import ProfitWeightedBundling
from repro.core.competition import Firm, LogitCompetition
from repro.core.cost import LinearDistanceCost
from repro.core.logit import LogitDemand
from repro.core.market import Market
from repro.synth.datasets import load_dataset

ALPHA = 1.1


def competition_study(n_flows=60, seed=7):
    flows = load_dataset("eu_isp", n_flows=n_flows, seed=seed)
    market = Market(
        flows, LogitDemand(ALPHA, s0=0.2), LinearDistanceCost(0.2), 20.0
    )
    valuations = market.valuations
    costs = market.costs
    tiers3 = ProfitWeightedBundling().bundle(market.bundling_inputs(), 3)
    blended = [np.arange(market.n_flows)]

    granularities = {
        "blended": blended,
        "3-tier": tiers3,
        "per-flow": None,
    }
    results = {}
    for name_a, bundles_a in granularities.items():
        for name_b, bundles_b in granularities.items():
            duopoly = LogitCompetition(
                valuations,
                firms=[
                    Firm("A", costs, bundles=bundles_a),
                    Firm("B", costs.copy(), bundles=bundles_b),
                ],
                alpha=ALPHA,
            )
            eq = duopoly.equilibrium()
            results[(name_a, name_b)] = {
                "profit_a": eq.profit("A"),
                "profit_b": eq.profit("B"),
                "share_a": eq.share("A"),
                "markup_a": eq.markup("A"),
            }
    monopoly_markup = LogitDemand(ALPHA, s0=0.2).optimal_markup(valuations, costs)
    return {"results": results, "monopoly_markup": monopoly_markup}


def render(data):
    names = ("blended", "3-tier", "per-flow")
    lines = [
        "Extension: pricing granularity as a strategy (duopoly, logit)",
        f"  monopoly markup reference: ${data['monopoly_markup']:.2f}/Mbps",
        "  A's profit (per consumer) by (A granularity x B granularity):",
        "  " + "A \\ B".ljust(11) + "".join(n.rjust(12) for n in names),
    ]
    for name_a in names:
        row = "  " + name_a.ljust(11)
        for name_b in names:
            row += f"{data['results'][(name_a, name_b)]['profit_a']:>12.4f}"
        lines.append(row)
    return "\n".join(lines)


def test_competition_granularity(run_once, save_output):
    data = run_once(competition_study)
    save_output("ext_competition", render(data))
    results = data["results"]
    # Competition compresses markups relative to monopoly.
    for cell in results.values():
        assert cell["markup_a"] < data["monopoly_markup"]
    # Unilateral refinement beats a blended rival...
    assert (
        results[("per-flow", "blended")]["profit_a"]
        > results[("blended", "blended")]["profit_a"]
    )
    assert (
        results[("3-tier", "blended")]["profit_a"]
        > results[("blended", "blended")]["profit_a"]
    )
    assert results[("per-flow", "blended")]["share_a"] > 0.5 * (
        1 - 1e-9
    )
    # ...and against a symmetric rival the granularity advantage vanishes.
    symmetric = results[("per-flow", "per-flow")]
    assert abs(symmetric["profit_a"] - symmetric["profit_b"]) < 1e-6
    # Finer pricing is a (weakly) dominant direction: against every rival
    # posture, per-flow earns at least what blended would.
    for rival in ("blended", "3-tier", "per-flow"):
        assert (
            results[("per-flow", rival)]["profit_a"]
            >= results[("blended", rival)]["profit_a"] - 1e-9
        )
