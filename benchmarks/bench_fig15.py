"""Figure 15 — worst-case capture over the starting blended rate (§4.3.2).

Minimum profit capture of the profit-weighted strategy over
P0 in [5, 30] $/Mbps for both demand models and all three networks."""

from repro.experiments import figure15_data

from bench_fig14 import assert_envelope_claims, render


def test_figure15(run_once, save_output):
    data = run_once(figure15_data)
    save_output(
        "fig15", render(data, "Figure 15", f"P0 in {data['blended_rates']}")
    )
    assert_envelope_claims(data, floor_at_2=0.4, floor_at_4=0.75)
    assert data["panels"]["ced"]["eu_isp"][data["bundle_counts"].index(2)] >= 0.6
