"""Figure 11 — EU ISP profit increase, concave cost model (§4.3.1).

Same sweep as Figure 10 under the concave (log-of-distance) cost model.
The shared claims (knee at 2-3 bundles; larger theta lowers attainable
profit) are asserted.

Documented deviation (EXPERIMENTS.md): the paper reports that capture
falls *faster* with theta under the concave model than the linear one.
With the paper's own base-cost definition beta = theta * max(f), raising
theta rescales the cost CV by 1/(1 + theta * max(f)/mean(f)), and a
concave transform always shrinks max/mean — so the concave model must
respond *less* to theta, which is what we measure; the bench asserts our
(analytically forced) ordering."""

from repro.experiments import figure10_data, figure11_data

from bench_fig10 import assert_theta_claims, render


def test_figure11(run_once, save_output):
    data = run_once(figure11_data)
    save_output("fig11", render(data, "Figure 11"))
    assert_theta_claims(data)
    # Cross-figure ordering (see module docstring): the linear model loses
    # more of its theta=0.1 profit by theta=0.3 than the concave model.
    linear = figure10_data()
    for family in data["panels"]:
        concave_drop = max(data["panels"][family]["normalized_gain"][0.3])
        linear_drop = max(linear["panels"][family]["normalized_gain"][0.3])
        assert linear_drop < concave_drop, family
