"""Figure 8 — profit capture per bundling strategy, CED demand (§4.2.2).

Three panels (EU ISP, Internet2, CDN), six strategies, linear cost with
theta = 0.2, alpha = 1.1, P0 = $20.  Headline paper findings asserted:

* the optimal bundling reaches >= 0.9 capture with 3-4 bundles;
* optimal dominates every heuristic at every bundle count;
* profit-weighted bundling stays close to optimal and demand-weighted
  bundling falls well behind it."""

from repro.experiments import figure8_data
from repro.experiments.render import render_figure8 as render


def assert_strategy_claims(panels: dict, optimal_floor_at4: float) -> None:
    for name, panel in panels.items():
        capture = panel["capture"]
        optimal = capture["optimal"]
        at = {b: i for i, b in enumerate(panel["bundle_counts"])}
        assert optimal[at[4]] >= optimal_floor_at4, (name, optimal)
        # Optimal dominates (small float slack for evaluation noise).
        for strategy, curve in capture.items():
            for b, value in zip(panel["bundle_counts"], curve):
                assert value <= optimal[at[b]] + 1e-6, (name, strategy, b)
        # Optimal with more tiers never loses profit.
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(optimal, optimal[1:])
        ), (name, optimal)
        # Profit-weighted tracks optimal; demand-weighted trails it.
        for b in (3, 4):
            gap_profit = optimal[at[b]] - capture["profit-weighted"][at[b]]
            gap_demand = optimal[at[b]] - capture["demand-weighted"][at[b]]
            assert gap_profit < gap_demand, (name, b)
            assert capture["profit-weighted"][at[b]] > 0.6, (name, b)


def test_figure8(run_once, save_output):
    panels = run_once(figure8_data)
    save_output("fig08", render(panels))
    assert_strategy_claims(panels, optimal_floor_at4=0.9)
