"""Extension bench: the §2.1 product taxonomy, priced on one market.

Evaluates every offering the paper's background section catalogs —
conventional transit, backplane peering, paid peering, regional pricing —
plus the paper's proposal (profit-weighted tiers), each as a bundling
constraint on the same calibrated EU-ISP market.  Asserted: the §2.2
narrative arc — the ad-hoc offerings beat the blended rate, and
demand+cost aware tiers beat the ad-hoc offerings."""

from repro.core.ced import CEDDemand
from repro.core.cost import DestinationTypeCost, LinearDistanceCost, RegionalCost
from repro.core.market import Market
from repro.peering.offerings import compare_offerings, render_offerings
from repro.synth.datasets import load_dataset


def offering_study(n_flows=100, seed=7):
    flows = load_dataset("eu_isp", n_flows=n_flows, seed=seed)
    markets = {
        "linear-cost": Market(
            flows, CEDDemand(1.1), LinearDistanceCost(0.2), 20.0
        ),
        "regional-cost": Market(flows, CEDDemand(1.1), RegionalCost(1.1), 20.0),
        "destination-type-cost": Market(
            flows, CEDDemand(1.1), DestinationTypeCost(0.2), 20.0
        ),
    }
    return {
        name: compare_offerings(market) for name, market in markets.items()
    }


def test_offering_taxonomy(run_once, save_output):
    panels = run_once(offering_study)
    text = "\n\n".join(
        f"[{name}]\n" + render_offerings(results)
        for name, results in panels.items()
    )
    save_output("ext_offerings", text)

    linear = {r.offering: r for r in panels["linear-cost"]}
    assert linear["backplane-peering"].profit > linear["conventional-transit"].profit
    assert (
        linear["profit-weighted-3-tiers"].profit
        > linear["backplane-peering"].profit
    )

    regional = {r.offering: r for r in panels["regional-cost"]}
    assert regional["regional-pricing"].profit > (
        regional["conventional-transit"].profit
    )

    onnet = {r.offering: r for r in panels["destination-type-cost"]}
    assert onnet["paid-peering"].profit > onnet["conventional-transit"].profit
    # Two flat cost classes: paid peering already captures everything.
    assert onnet["paid-peering"].profit_capture > 0.999
