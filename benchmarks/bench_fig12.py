"""Figure 12 — EU ISP profit increase, regional cost model (§4.3.1).

Metro/national/international costs 1 : 2^theta : 3^theta for theta in
{1.0, 1.1, 1.2}.  Asserted paper findings: higher theta (higher cost CV
across regions) produces higher profit, and small dips with 5-6 bundles
are expected when there are only a few traffic classes."""

from repro.experiments import figure12_data

from bench_fig10 import render


def test_figure12(run_once, save_output):
    data = run_once(figure12_data)
    save_output("fig12", render(data, "Figure 12"))
    for family, panel in data["panels"].items():
        curves = panel["normalized_gain"]
        thetas = sorted(curves)
        # Higher theta -> more attainable profit (opposite of Figs 10-11,
        # because here theta *widens* the regional cost spread).
        for lo, hi in zip(thetas, thetas[1:]):
            assert max(curves[hi]) > max(curves[lo]), (family, lo, hi)
        # Three region classes: three bundles already capture most profit.
        counts = panel["bundle_counts"]
        at3 = counts.index(3)
        for theta in thetas:
            assert curves[theta][at3] >= 0.5 * max(curves[theta]), (family, theta)
