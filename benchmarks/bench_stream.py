"""Streaming-path bench: throughput baseline for the online repricer.

Replays a seeded synthetic trace through the full streaming chain —
export-interval re-chunking, bounded queue, event-time windows, per-window
recalibration, drift-gated re-tiering — and archives the sustained
records/sec alongside the window ledger.  The committed JSON is the
throughput trajectory: diffs show when the stream path got slower or
started re-tiering on stationary traffic.
"""

import json

from repro.core.ced import CEDDemand
from repro.core.cost import LinearDistanceCost
from repro.stream import StreamConfig, StreamingPipeline, TraceReplaySource
from repro.synth.trace import generate_network_trace

from conftest import OUTPUT_DIR


def stream_study(n_flows=80, seed=17, duration_s=7200.0):
    trace = generate_network_trace(
        "eu_isp", n_flows=n_flows, seed=seed, duration_seconds=duration_s
    )
    source = TraceReplaySource(trace, export_interval_ms=60_000)
    pipeline = StreamingPipeline(
        source,
        distance_fn=trace.distance_for,
        demand_model=CEDDemand(1.1),
        cost_model=LinearDistanceCost(0.2),
        config=StreamConfig(window_ms=600_000),
    )
    return pipeline.run()


def test_stream_throughput(run_once, save_output):
    report = run_once(stream_study)
    save_output("stream_throughput", report.render())
    baseline = {
        "records_consumed": report.records_consumed,
        "records_per_second": round(report.records_per_second, 1),
        "windows": len(report.results),
        "windows_priced": report.windows_priced,
        "retier_events": report.retier_events,
        "queue_dropped": report.queue_dropped,
        "late_dropped": report.late_dropped,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "stream_throughput.baseline.json").write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    # The stream must make progress and stay drift-quiet on stationary
    # traffic.  Flows ramp in over the first windows, so the bootstrap
    # design may re-tier once more as the population completes; after
    # that, no spurious re-tiers.
    assert report.windows_priced >= 10
    assert 1 <= report.retier_events <= 2
    assert all(not r.retier for r in report.results[2:])
    assert report.queue_dropped == 0
    assert report.records_per_second > 1000
