"""Extension bench: five years of 30 %/year price decline (§1 context).

The paper's opening fact — blended rates falling ~30 % per year — framed
as a simulation: each year the EU-ISP market is recalibrated at the lower
rate (with elastic demand response plus exogenous growth) and three tiers
are re-derived.  Asserted: rates and tier prices track the decline,
demand grows, and the *relative* value of tiering (profit premium and
capture) persists through commoditization — the paper's motivation for
ISPs adopting tiered pricing as prices fall."""

from repro.core.trajectory import render_trajectory, simulate_price_decline
from repro.synth.datasets import load_dataset


def run_trajectory():
    flows = load_dataset("eu_isp", n_flows=80, seed=7)
    return simulate_price_decline(
        flows,
        years=5,
        initial_rate=20.0,
        annual_price_decline=0.30,
        annual_demand_growth=0.25,
        alpha=1.1,
        n_bundles=3,
    )


def test_price_decline_trajectory(run_once, save_output):
    outcomes = run_once(run_trajectory)
    save_output("ext_trajectory", render_trajectory(outcomes))
    rates = [o.blended_rate for o in outcomes]
    demands = [o.total_demand_mbps for o in outcomes]
    # The market commoditizes: rates fall, traffic grows.
    assert all(b < a for a, b in zip(rates, rates[1:]))
    assert all(b > a for a, b in zip(demands, demands[1:]))
    # Tier cards re-derive sensibly: top tier price falls with the market.
    tops = [max(o.tier_prices) for o in outcomes]
    assert all(b < a for a, b in zip(tops, tops[1:]))
    # Tiering keeps delivering: capture and premium persist every year.
    for outcome in outcomes:
        assert outcome.profit_capture > 0.6
        assert outcome.tiering_premium > 0.0
    # The tiering premium is roughly scale-free (within 2x across years):
    # commoditization does not erode the *relative* value of tiers.
    premiums = [o.tiering_premium for o in outcomes]
    assert max(premiums) < 2.5 * min(premiums)
